(* Tests for Cup_obs: JSON codec, trace sinks, and in-run time-series
   sampling. *)

module Json = Cup_obs.Json
module Event_json = Cup_obs.Event_json
module Sink = Cup_obs.Sink
module Timeseries = Cup_obs.Timeseries
module Trace = Cup_sim.Trace
module Runner = Cup_sim.Runner
module Scenario = Cup_sim.Scenario
module Counters = Cup_metrics.Counters
module Policy = Cup_proto.Policy
module Time = Cup_dess.Time
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key

let base =
  {
    Scenario.default with
    nodes = 48;
    total_keys_override = Some 1;
    query_rate = 0.5;
    query_start = 300.;
    query_duration = 900.;
    drain = 300.;
    seed = 1001;
  }

(* {1 JSON} *)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 3.25;
      Json.Float 300.39042724950792;
      Json.String "plain";
      Json.String "with \"quotes\", \\slashes\\ and\nnewlines\t";
      Json.List [ Json.Int 1; Json.Bool false; Json.Null ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Float 0.5 ]) ]);
        ];
      Json.List [];
      Json.Obj [];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' ->
          Alcotest.(check string)
            ("round-trip " ^ s) s (Json.to_string v')
      | Error e -> Alcotest.fail (Printf.sprintf "parse %s: %s" s e))
    cases

let test_json_float_precision () =
  (* floats survive print/parse exactly, including awkward ones *)
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
          Alcotest.(check bool) (Printf.sprintf "%h exact" f) true (f = f')
      | Ok (Json.Int i) ->
          Alcotest.(check bool) "integral float" true (float_of_int i = f)
      | Ok _ -> Alcotest.fail "wrong constructor"
      | Error e -> Alcotest.fail e)
    [ 0.; 1. /. 3.; 300.39042724950792; 1e-9; 123456789.123456789; 1e22 ]

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "1 2"; "nul"; "\"unterminated" ]

(* {1 Event JSON round-trip} *)

let all_events =
  (* a small but causally consistent trace: one query trace (1) whose
     spans chain 1 → 2 → … and one update forest rooted at parent 0 *)
  let at = Time.of_seconds 350.125 in
  let n i = Node_id.of_int i in
  let k = Key.of_int 3 in
  [
    Trace.Query_posted
      { at; node = n 4; key = k; trace_id = 1; span_id = 1; parent_id = 0 };
    Trace.Query_forwarded
      {
        at;
        from_ = n 4;
        to_ = n 9;
        key = k;
        trace_id = 1;
        span_id = 2;
        parent_id = 1;
      };
    Trace.Update_delivered
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        kind = Cup_proto.Update.First_time;
        level = 1;
        answering = true;
        entries = [ (1, 650.5); (2, 700.) ];
        trace_id = 1;
        span_id = 3;
        parent_id = 2;
      };
    Trace.Update_delivered
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        kind = Cup_proto.Update.Refresh;
        level = 3;
        answering = false;
        entries = [ (1, 820.25) ];
        trace_id = 7;
        span_id = 4;
        parent_id = 0;
      };
    Trace.Update_delivered
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        kind = Cup_proto.Update.Delete;
        level = 2;
        answering = false;
        entries = [ (2, 0.) ];
        trace_id = 7;
        span_id = 5;
        parent_id = 4;
      };
    Trace.Update_delivered
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        kind = Cup_proto.Update.Append;
        level = 7;
        answering = false;
        entries = [];
        trace_id = 7;
        span_id = 6;
        parent_id = 4;
      };
    Trace.Clear_bit_delivered
      {
        at;
        from_ = n 4;
        to_ = n 9;
        key = k;
        trace_id = 1;
        span_id = 7;
        parent_id = 3;
      };
    Trace.Local_answer
      {
        at;
        node = n 4;
        key = k;
        hit = false;
        waiters = 2;
        trace_id = 1;
        span_id = 8;
        parent_id = 3;
      };
    Trace.Node_crashed { at; node = n 9 };
    Trace.Node_recovered { at; node = n 16 };
    Trace.Message_lost
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        trace_id = 1;
        span_id = 9;
        parent_id = 2;
      };
    Trace.Repair_query
      {
        at;
        node = n 4;
        key = k;
        attempt = 2;
        trace_id = 10;
        span_id = 10;
        parent_id = 0;
      };
  ]

(* QCheck generator covering every [Trace.event] constructor with
   arbitrary field values, so the codec round-trip is a property over
   the whole event type rather than a hand-picked list. *)
let event_gen : Trace.event QCheck.Gen.t =
  let open QCheck.Gen in
  let at = map Time.of_seconds (float_range 0. 100_000.) in
  let node = map Node_id.of_int (int_range 0 4095) in
  let key = map Key.of_int (int_range 0 4095) in
  let span_id = int_range 0 1_000_000 in
  let spans = triple span_id span_id span_id in
  let kind =
    oneofl
      Cup_proto.Update.
        [ First_time; Refresh; Delete; Append ]
  in
  oneof
    [
      map3
        (fun at (node, key) (trace_id, span_id, parent_id) ->
          Trace.Query_posted { at; node; key; trace_id; span_id; parent_id })
        at (pair node key) spans;
      map3
        (fun at (from_, to_, key) (trace_id, span_id, parent_id) ->
          Trace.Query_forwarded
            { at; from_; to_; key; trace_id; span_id; parent_id })
        at (triple node node key) spans;
      map3
        (fun (at, from_, to_) ((key, kind, level, answering), entries)
             (trace_id, span_id, parent_id) ->
          Trace.Update_delivered
            {
              at;
              from_;
              to_;
              key;
              kind;
              level;
              answering;
              entries;
              trace_id;
              span_id;
              parent_id;
            })
        (triple at node node)
        (pair
           (quad key kind (int_range 0 64) bool)
           (list_size (int_range 0 4)
              (pair (int_range 0 4095) (float_range 0. 100_000.))))
        spans;
      map3
        (fun at (from_, to_, key) (trace_id, span_id, parent_id) ->
          Trace.Clear_bit_delivered
            { at; from_; to_; key; trace_id; span_id; parent_id })
        at (triple node node key) spans;
      map3
        (fun (at, node, key) (hit, waiters) (trace_id, span_id, parent_id) ->
          Trace.Local_answer
            { at; node; key; hit; waiters; trace_id; span_id; parent_id })
        (triple at node key)
        (pair bool (int_range 0 100))
        spans;
      map2 (fun at node -> Trace.Node_crashed { at; node }) at node;
      map2 (fun at node -> Trace.Node_recovered { at; node }) at node;
      map3
        (fun at (from_, to_, key) (trace_id, span_id, parent_id) ->
          Trace.Message_lost
            { at; from_; to_; key; trace_id; span_id; parent_id })
        at (triple node node key) spans;
      map3
        (fun (at, node, key) attempt (trace_id, span_id, parent_id) ->
          Trace.Repair_query
            { at; node; key; attempt; trace_id; span_id; parent_id })
        (triple at node key) (int_range 1 10) spans;
    ]

let arb_event =
  QCheck.make
    ~print:(fun e -> Format.asprintf "%a" Trace.pp_event e)
    event_gen

let prop_event_json_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode → parse → encode is byte-identical"
    arb_event (fun event ->
      let line = Event_json.to_string event in
      match Event_json.of_string line with
      | Error e -> QCheck.Test.fail_reportf "%s: %s" line e
      | Ok event' ->
          if event <> event' then
            QCheck.Test.fail_reportf "value changed: %s" line;
          let line' = Event_json.to_string event' in
          if line <> line' then
            QCheck.Test.fail_reportf "bytes changed: %s vs %s" line line';
          (match Json.of_string line with
          | Ok j ->
              if
                Option.is_none
                  (Option.bind (Json.member "type" j) Json.to_str)
              then QCheck.Test.fail_reportf "no type field: %s" line
          | Error e -> QCheck.Test.fail_reportf "not an object: %s" e);
          true)

let test_event_json_legacy_parse () =
  (* pre-span traces (no trace/span/parent fields) must still parse,
     with the ids defaulting to 0 *)
  let cases =
    [
      ( "{\"type\":\"query_posted\",\"at\":1.5,\"node\":4,\"key\":3}",
        Trace.Query_posted
          {
            at = Time.of_seconds 1.5;
            node = Node_id.of_int 4;
            key = Key.of_int 3;
            trace_id = 0;
            span_id = 0;
            parent_id = 0;
          } );
      ( "{\"type\":\"update_delivered\",\"at\":2.0,\"from\":9,\"to\":4,\
         \"key\":3,\"kind\":\"refresh\",\"level\":2,\"answering\":false}",
        Trace.Update_delivered
          {
            at = Time.of_seconds 2.0;
            from_ = Node_id.of_int 9;
            to_ = Node_id.of_int 4;
            key = Key.of_int 3;
            kind = Cup_proto.Update.Refresh;
            level = 2;
            answering = false;
            entries = [];
            trace_id = 0;
            span_id = 0;
            parent_id = 0;
          } );
      ( "{\"type\":\"repair_query\",\"at\":3.0,\"node\":4,\"key\":3,\
         \"attempt\":1}",
        Trace.Repair_query
          {
            at = Time.of_seconds 3.0;
            node = Node_id.of_int 4;
            key = Key.of_int 3;
            attempt = 1;
            trace_id = 0;
            span_id = 0;
            parent_id = 0;
          } );
    ]
  in
  List.iter
    (fun (line, expected) ->
      match Event_json.of_string line with
      | Ok e -> Alcotest.(check bool) line true (e = expected)
      | Error msg -> Alcotest.fail (line ^ ": " ^ msg))
    cases;
  (* span ids surface through the accessor; membership events carry none *)
  List.iter
    (fun e ->
      match (Trace.event_span e, e) with
      | None, (Trace.Node_crashed _ | Trace.Node_recovered _) -> ()
      | Some _, (Trace.Node_crashed _ | Trace.Node_recovered _) ->
          Alcotest.fail "membership event claims a span"
      | None, _ -> Alcotest.fail "protocol event lost its span"
      | Some _, _ -> ())
    all_events

let test_event_json_rejects_bad_events () =
  List.iter
    (fun s ->
      match Event_json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [
      "{}";
      "{\"type\":\"warp_drive\",\"at\":1.0}";
      "{\"type\":\"query_posted\",\"at\":1.0,\"node\":1}";
      "{\"type\":\"query_posted\",\"at\":1.0,\"node\":-1,\"key\":0}";
      "{\"type\":\"update_delivered\",\"at\":1.0,\"from\":0,\"to\":1,\
       \"key\":0,\"kind\":\"sideways\",\"level\":1,\"answering\":false}";
      "not json at all";
    ]

(* {1 Sinks} *)

let test_sink_fanout_and_counts () =
  let ring_a = Trace.create ~capacity:4 () in
  let ring_b = Trace.create ~capacity:100 () in
  let a = Sink.ring ring_a and b = Sink.ring ring_b in
  let fan = Sink.fanout [ a; b ] in
  List.iter (Sink.emit fan) all_events;
  Alcotest.(check int) "fanout saw all" (List.length all_events)
    (Sink.events_seen fan);
  Alcotest.(check int) "child a saw all" (List.length all_events)
    (Sink.events_seen a);
  Alcotest.(check int) "small ring kept capacity" 4 (Trace.length ring_a);
  Alcotest.(check int) "big ring kept everything" (List.length all_events)
    (Trace.length ring_b);
  Sink.close fan;
  Sink.close fan;
  (* idempotent *)
  Alcotest.check_raises "emit after close"
    (Invalid_argument "Sink.emit: sink is closed") (fun () ->
      Sink.emit fan (List.hd all_events))

let test_jsonl_sink_roundtrip () =
  (* write a synthetic stream, read it back line by line *)
  let path = Filename.temp_file "cup_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Sink.jsonl_file path in
      List.iter (Sink.emit sink) all_events;
      Sink.close sink;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed =
        List.rev_map
          (fun line ->
            match Event_json.of_string line with
            | Ok e -> e
            | Error msg -> Alcotest.fail (line ^ ": " ^ msg))
          !lines
      in
      Alcotest.(check bool) "events survive the file round-trip" true
        (parsed = all_events))

let test_jsonl_sink_on_live_run_matches_counters () =
  (* stream a whole simulation to JSONL; re-read it and check the
     per-type event counts against the run's own accounting *)
  let path = Filename.temp_file "cup_run" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let live = Runner.Live.create (Scenario.with_policy base Policy.second_chance) in
      let sink = Sink.jsonl_file path in
      Sink.attach live sink;
      let r = Runner.Live.finish live in
      Sink.close sink;
      let counts = Hashtbl.create 8 in
      let total = ref 0 in
      let ic = open_in path in
      (try
         while true do
           let line = input_line ic in
           incr total;
           match Event_json.of_string line with
           | Error msg -> Alcotest.fail (line ^ ": " ^ msg)
           | Ok event ->
               let typ =
                 match event with
                 | Trace.Query_posted _ -> "query_posted"
                 | Trace.Query_forwarded _ -> "query_forwarded"
                 | Trace.Update_delivered _ -> "update_delivered"
                 | Trace.Clear_bit_delivered _ -> "clear_bit"
                 | Trace.Local_answer _ -> "local_answer"
                 | Trace.Node_crashed _ -> "node_crashed"
                 | Trace.Node_recovered _ -> "node_recovered"
                 | Trace.Message_lost _ -> "message_lost"
                 | Trace.Repair_query _ -> "repair_query"
               in
               Hashtbl.replace counts typ
                 (1 + Option.value ~default:0 (Hashtbl.find_opt counts typ))
         done
       with End_of_file -> close_in ic);
      let count typ = Option.value ~default:0 (Hashtbl.find_opt counts typ) in
      Alcotest.(check int) "sink saw every line it wrote" !total
        (Sink.events_seen sink);
      Alcotest.(check int) "query hops" (Counters.query_hops r.counters)
        (count "query_forwarded");
      Alcotest.(check int) "delivered updates"
        (Counters.first_time_answer_hops r.counters
        + Counters.first_time_proactive_hops r.counters
        + Counters.refresh_hops r.counters
        + Counters.delete_hops r.counters
        + Counters.append_hops r.counters)
        (count "update_delivered");
      Alcotest.(check int) "clear-bits"
        (Counters.clear_bit_hops r.counters)
        (count "clear_bit"))

(* {1 Time series} *)

let quiet_base =
  (* all protocol activity finishes well before sim_end, so the last
     sample tick sees the final counter values *)
  Scenario.with_policy
    {
      base with
      query_duration = 400.;
      drain = 300.;
      replica_lifetime = 10000.;
    }
    Policy.Standard_caching

let test_timeseries_deltas_sum_to_totals () =
  let live = Runner.Live.create quiet_base in
  let ts = Timeseries.attach ~interval:50. live in
  let r = Runner.Live.finish live in
  let samples = Timeseries.samples ts in
  Alcotest.(check int) "one sample per interval" 20 (List.length samples);
  let sum get = List.fold_left (fun acc s -> acc + get s) 0 samples in
  Alcotest.(check int) "total cost deltas sum to the run total"
    (Counters.total_cost r.counters)
    (sum (fun (s : Timeseries.sample) -> s.total_cost));
  Alcotest.(check int) "miss deltas"
    (Counters.miss_cost r.counters)
    (sum (fun (s : Timeseries.sample) -> s.miss_cost));
  Alcotest.(check int) "hit deltas" (Counters.hits r.counters)
    (sum (fun (s : Timeseries.sample) -> s.hits));
  Alcotest.(check int) "miss count deltas" (Counters.misses r.counters)
    (sum (fun (s : Timeseries.sample) -> s.misses));
  (* timestamps advance by exactly one interval *)
  let rec check_spacing = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check (float 1e-9)) "spacing" 50.
          (b.Timeseries.at -. a.Timeseries.at);
        check_spacing rest
    | _ -> ()
  in
  check_spacing samples;
  (* sampling is pure observation: the run's costs match an
     unsampled run of the same scenario *)
  let plain = Runner.run quiet_base in
  Alcotest.(check int) "sampling does not perturb the run"
    (Counters.total_cost plain.counters)
    (Counters.total_cost r.counters)

let test_timeseries_deterministic_and_csv () =
  let rows_of () =
    let live = Runner.Live.create quiet_base in
    let ts = Timeseries.attach ~interval:50. live in
    ignore (Runner.Live.finish live);
    Timeseries.csv_rows ts
  in
  let a = rows_of () and b = rows_of () in
  Alcotest.(check bool) "same seed, identical rows" true (a = b);
  let path = Filename.temp_file "cup_ts" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let live = Runner.Live.create quiet_base in
      let ts = Timeseries.attach ~interval:50. live in
      ignore (Runner.Live.finish live);
      Timeseries.write_csv ts ~path;
      let ic = open_in path in
      let header = input_line ic in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> close_in ic);
      Alcotest.(check string) "header" (String.concat "," Timeseries.csv_header)
        header;
      Alcotest.(check int) "one line per sample"
        (List.length (Timeseries.samples ts))
        !n)

let test_timeseries_queue_depths_under_token_bucket () =
  let starved =
    Scenario.with_policy
      {
        base with
        replicas_per_key = 5;
        replica_lifetime = 60.;
        capacity_mode = Scenario.Token_bucket 0.05;
      }
      Policy.second_chance
  in
  let live = Runner.Live.create starved in
  let ts = Timeseries.attach ~interval:50. live in
  ignore (Runner.Live.finish live);
  Alcotest.(check bool) "starved channels show queued updates" true
    (List.exists
       (fun (s : Timeseries.sample) -> s.queued_updates > 0)
       (Timeseries.samples ts));
  Alcotest.(check bool) "max depth bounded by total" true
    (List.for_all
       (fun (s : Timeseries.sample) -> s.max_queue_depth <= s.queued_updates)
       (Timeseries.samples ts))

(* {1 Spans on live runs} *)

let faulty =
  (* crash + loss injection: the adversarial setting for causal links *)
  {
    base with
    nodes = 64;
    query_duration = 600.;
    crashes =
      Some { Scenario.crash_rate = 0.02; recover_after = 20.; warmup = 30. };
    loss = Some { Scenario.drop = 0.15; jitter = 1.0 };
  }

let trace_bytes scenario =
  (* run [scenario] streaming every event through the JSONL codec,
     returning the byte-for-byte trace and the run result *)
  let buf = Buffer.create 4096 in
  let live = Runner.Live.create scenario in
  Runner.Live.set_tracer live
    (Some
       (fun e ->
         Buffer.add_string buf (Event_json.to_string e);
         Buffer.add_char buf '\n'));
  let r = Runner.Live.finish live in
  (Buffer.contents buf, r)

let events_of_bytes bytes =
  String.split_on_char '\n' bytes
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Event_json.of_string l with
         | Ok e -> e
         | Error msg -> Alcotest.fail (l ^ ": " ^ msg))

let test_spans_deterministic_across_schedulers () =
  let heap, _ = trace_bytes { faulty with scheduler = Some `Heap } in
  let cal, _ = trace_bytes { faulty with scheduler = Some `Calendar } in
  Alcotest.(check bool)
    "byte-identical trace (span ids included) heap vs calendar" true
    (heap = cal);
  Alcotest.(check bool) "trace is nonempty" true (String.length heap > 0)

let test_spans_deterministic_across_jobs () =
  (* the per-run span counter must not leak across runs: a pool
     executing runs on 4 domains yields the same bytes as jobs=1 *)
  let seeds = [ 2001; 2002; 2003; 2004; 2005; 2006 ] in
  let run_all jobs =
    Cup_parallel.Pool.with_pool ~jobs (fun pool ->
        Cup_parallel.Pool.map pool
          (fun seed -> fst (trace_bytes { faulty with seed }))
          seeds)
  in
  Alcotest.(check bool) "jobs=1 and jobs=4 give identical traces" true
    (run_all 1 = run_all 4)

let test_metrics_attachment_keeps_trace_bytes () =
  (* attaching a registry alongside the tracer must not perturb span
     allocation *)
  let plain, _ = trace_bytes faulty in
  let buf = Buffer.create 4096 in
  let live = Runner.Live.create faulty in
  let registry = Cup_metrics.Registry.create () in
  Runner.Live.set_metrics live (Some registry);
  Runner.Live.set_tracer live
    (Some
       (fun e ->
         Buffer.add_string buf (Event_json.to_string e);
         Buffer.add_char buf '\n'));
  ignore (Runner.Live.finish live);
  Alcotest.(check bool) "same bytes with metrics attached" true
    (plain = Buffer.contents buf);
  Alcotest.(check bool) "registry filled" true
    (Cup_metrics.Registry.series_count registry > 0)

let test_registry_deterministic_across_schedulers () =
  let exposition scheduler =
    let live = Runner.Live.create { faulty with scheduler = Some scheduler } in
    let registry = Cup_metrics.Registry.create () in
    Runner.Live.set_metrics live (Some registry);
    ignore (Runner.Live.finish live);
    Cup_metrics.Registry.to_prometheus registry
  in
  let heap = exposition `Heap in
  Alcotest.(check string) "byte-identical exposition heap vs calendar" heap
    (exposition `Calendar);
  Alcotest.(check bool) "exposition nonempty" true (String.length heap > 0)

(* {1 Analyzer} *)

let test_analyzer_no_orphans_under_faults () =
  let bytes, r = trace_bytes faulty in
  let events = events_of_bytes bytes in
  let s = Cup_obs.Analyzer.analyze events in
  Alcotest.(check int) "saw every event" (List.length events) s.events;
  Alcotest.(check int) "zero orphan spans under crash+loss" 0 s.orphans;
  Alcotest.(check int) "no legacy events in a fresh trace" 0 s.legacy;
  Alcotest.(check bool) "reconstructed some traces" true (s.traces <> []);
  List.iter
    (fun (t : Cup_obs.Analyzer.tree) ->
      Alcotest.(check bool) "depth ≥ 1" true (t.depth >= 1);
      Alcotest.(check bool) "spans ≥ depth" true (t.spans >= t.depth);
      Alcotest.(check bool) "critical path nonempty" true
        (t.critical_path <> []);
      Alcotest.(check bool) "critical path bounded by depth" true
        (List.length t.critical_path <= t.depth))
    s.traces;
  (* hit/miss replay matches the runner's own counters *)
  Alcotest.(check int) "hits" (Counters.hits r.counters) s.hits;
  Alcotest.(check int) "misses" (Counters.misses r.counters) s.misses;
  Alcotest.(check int) "every posted query answered" 0 s.unanswered

let test_analyzer_latency_matches_counters () =
  (* recovered miss latencies (seconds) = counters' latencies (hops)
     × hop_delay, so the means must agree to rounding *)
  let bytes, r = trace_bytes faulty in
  let s = Cup_obs.Analyzer.analyze (events_of_bytes bytes) in
  Alcotest.(check int) "one latency sample per miss" s.misses
    (Array.length s.miss_latencies);
  if s.misses > 0 then begin
    let mean_hops =
      Cup_obs.Analyzer.mean_of s.miss_latencies /. faulty.hop_delay
    in
    Alcotest.(check (float 1e-6)) "mean latency matches counters"
      (Counters.avg_miss_latency_hops r.counters)
      mean_hops;
    let p50 = Cup_obs.Analyzer.percentile s.miss_latencies 0.50 in
    let p99 = Cup_obs.Analyzer.percentile s.miss_latencies 0.99 in
    Alcotest.(check bool) "p50 ≤ p99 ≤ max" true
      (p50 <= p99 && p99 <= s.miss_latencies.(Array.length s.miss_latencies - 1))
  end

let test_analyzer_handles_legacy_and_orphans () =
  let at = Time.of_seconds 1.0 in
  let n = Node_id.of_int 1 and k = Key.of_int 0 in
  let legacy =
    Trace.Query_posted
      { at; node = n; key = k; trace_id = 0; span_id = 0; parent_id = 0 }
  in
  let orphan =
    Trace.Query_forwarded
      {
        at;
        from_ = n;
        to_ = Node_id.of_int 2;
        key = k;
        trace_id = 5;
        span_id = 77;
        parent_id = 66;
        (* 66 never appears *)
      }
  in
  let s = Cup_obs.Analyzer.analyze [ legacy; orphan ] in
  Alcotest.(check int) "legacy counted" 1 s.legacy;
  Alcotest.(check int) "orphan detected" 1 s.orphans;
  Alcotest.(check bool) "orphan example recorded" true
    (List.mem (77, 66) s.orphan_examples)

(* {1 Binary trace codec, writer, reader and streaming analyzer} *)

module Binary_codec = Cup_obs.Binary_codec
module Binary_writer = Cup_obs.Binary_writer
module Trace_reader = Cup_obs.Trace_reader
module Scale = Cup_sim.Scale

(* Parse one framed record produced by [encode_to_string]: the LEB128
   length prefix followed by the body.  Returns the record and the
   total bytes consumed. *)
let decode_framed bytes =
  let pos = ref 0 in
  let rec varint shift acc =
    let b = Char.code bytes.[!pos] in
    incr pos;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then varint (shift + 7) acc else acc
  in
  let len = varint 0 0 in
  let r = Binary_codec.decode_body bytes ~pos:!pos ~len in
  (r, !pos + len)

let prop_binary_roundtrip =
  QCheck.Test.make ~count:2000
    ~name:"binary encode → decode → encode is byte-identical" arb_event
    (fun event ->
      let bytes = Binary_codec.encode_to_string (Binary_codec.Event event) in
      let r', consumed = decode_framed bytes in
      if consumed <> String.length bytes then
        QCheck.Test.fail_reportf "frame length mismatch: %d vs %d" consumed
          (String.length bytes);
      (match r' with
      | Binary_codec.Event e' when e' = event -> ()
      | _ -> QCheck.Test.fail_reportf "value changed across the round-trip");
      String.equal bytes (Binary_codec.encode_to_string r'))

let scale_events =
  [
    Scale.T_post { w = 0; node = 7; key = 3; idx = 0; out = 2 };
    Scale.T_msg
      { w = 0; dst = 8; src = 7; seq = 1; body = Scale.B_query 3; out = 1 };
    Scale.T_msg
      {
        w = 1;
        dst = 7;
        src = 8;
        seq = 2;
        body =
          Scale.B_update
            {
              key = 3;
              kind = Cup_proto.Update.First_time;
              level = 2;
              answering = true;
            };
        out = 0;
      };
    Scale.T_msg
      { w = 2; dst = 9; src = 7; seq = 3; body = Scale.B_clear 3; out = 1 };
    Scale.T_refresh { w = 3; key = 3; idx = 1; out = 4 };
  ]

let test_binary_scale_and_line_roundtrip () =
  (* every record shape survives encode → decode, and the opaque-line
     record carries foreign bytes verbatim *)
  List.iter
    (fun ev ->
      let r = Binary_codec.Scale ev in
      match decode_framed (Binary_codec.encode_to_string r) with
      | Binary_codec.Scale ev', _ ->
          Alcotest.(check string)
            "scale record round-trips" (Scale.trace_line ev)
            (Scale.trace_line ev')
      | _, _ -> Alcotest.fail "scale record changed shape")
    scale_events;
  let line = "# not json at all {\xff" in
  match decode_framed (Binary_codec.encode_to_string (Binary_codec.Line line))
  with
  | Binary_codec.Line line', _ ->
      Alcotest.(check string) "opaque line verbatim" line line'
  | _, _ -> Alcotest.fail "line record changed shape"

let test_binary_writer_tiny_buffer_ordering () =
  (* a 64-byte chunk threshold forces a buffer swap every couple of
     records, so record boundaries land on every possible chunk edge;
     the file must still contain exactly the emitted sequence *)
  let path = Filename.temp_file "cup_trace" ".ctrace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = Binary_writer.to_file ~buffer_size:64 path in
      let expected = ref [] in
      for i = 1 to 200 do
        let ev = List.nth all_events (i mod List.length all_events) in
        Binary_writer.emit_event w ev;
        expected := ev :: !expected
      done;
      Binary_writer.close w;
      Alcotest.(check int) "records counted" 200 (Binary_writer.records w);
      Alcotest.(check bool) "bytes written" true
        (Binary_writer.bytes_written w > 0);
      let got = ref [] in
      Trace_reader.iter path ~f:(fun _ item ->
          match item with
          | Trace_reader.Event e -> got := e :: !got
          | _ -> Alcotest.fail "unexpected non-event record");
      Alcotest.(check int) "all records read back" 200 (List.length !got);
      Alcotest.(check bool) "sequence preserved across chunk swaps" true
        (!got = !expected))

let test_trace_reader_classifies_both_formats () =
  (* the same mixed stream — protocol events, scale records, a foreign
     line — must classify identically whether it reaches the reader as
     JSONL or as binary *)
  let raw = "# plain comment line" in
  let jsonl_path = Filename.temp_file "cup_trace" ".jsonl" in
  let bin_path = Filename.temp_file "cup_trace" ".ctrace" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove jsonl_path;
      Sys.remove bin_path)
    (fun () ->
      let oc = open_out jsonl_path in
      List.iter
        (fun e ->
          output_string oc (Event_json.to_string e);
          output_char oc '\n')
        all_events;
      List.iter
        (fun ev ->
          output_string oc (Scale.trace_line ev);
          output_char oc '\n')
        scale_events;
      output_string oc (raw ^ "\n");
      close_out oc;
      let w = Binary_writer.to_file bin_path in
      List.iter (Binary_writer.emit_event w) all_events;
      List.iter (Binary_writer.emit_scale w) scale_events;
      Binary_writer.emit_line w raw;
      Binary_writer.close w;
      Alcotest.(check bool) "formats sniffed" true
        (Trace_reader.detect jsonl_path = Trace_reader.Jsonl
        && Trace_reader.detect bin_path = Trace_reader.Binary);
      let classify path =
        let items = ref [] in
        Trace_reader.iter path ~f:(fun ord item ->
            let tag =
              match item with
              | Trace_reader.Event e -> "event:" ^ Event_json.to_string e
              | Trace_reader.Scale_record ev -> "scale:" ^ Scale.trace_line ev
              | Trace_reader.Raw { line; _ } -> "raw:" ^ line
              | Trace_reader.Malformed m -> "malformed:" ^ m
            in
            items := (ord, tag) :: !items);
        List.rev !items
      in
      let from_jsonl = classify jsonl_path and from_bin = classify bin_path in
      Alcotest.(check int) "same record count"
        (List.length from_jsonl) (List.length from_bin);
      Alcotest.(check bool) "identical classification" true
        (from_jsonl = from_bin);
      Alcotest.(check bool) "raw line surfaced" true
        (List.exists (fun (_, t) -> t = "raw:" ^ raw) from_bin))

let test_streaming_analyzer_matches_legacy () =
  (* the constant-memory analyzer must agree with the materializing
     one, structurally, on a real crash+loss trace *)
  let bytes, _ = trace_bytes faulty in
  let events = events_of_bytes bytes in
  let legacy = Cup_obs.Analyzer.analyze events in
  let st = Cup_obs.Analyzer.Streaming.create () in
  List.iter (Cup_obs.Analyzer.Streaming.feed st) events;
  let streamed = Cup_obs.Analyzer.Streaming.finish st in
  Alcotest.(check bool) "trace is nonempty" true (events <> []);
  Alcotest.(check bool) "summaries structurally equal" true
    (streamed = legacy);
  (* and on the degenerate legacy/orphan shapes, including forward
     parent references the streaming pass resolves retroactively *)
  let at = Time.of_seconds 1.0 in
  let n i = Node_id.of_int i and k = Key.of_int 0 in
  let degenerate =
    [
      Trace.Query_posted
        { at; node = n 1; key = k; trace_id = 0; span_id = 0; parent_id = 0 };
      Trace.Query_forwarded
        {
          at;
          from_ = n 1;
          to_ = n 2;
          key = k;
          trace_id = 5;
          span_id = 77;
          parent_id = 66;
        };
      (* forward reference: child arrives before its parent *)
      Trace.Query_forwarded
        {
          at;
          from_ = n 2;
          to_ = n 3;
          key = k;
          trace_id = 9;
          span_id = 101;
          parent_id = 100;
        };
      Trace.Query_posted
        { at; node = n 2; key = k; trace_id = 9; span_id = 100; parent_id = 0 };
    ]
  in
  let st = Cup_obs.Analyzer.Streaming.create () in
  List.iter (Cup_obs.Analyzer.Streaming.feed st) degenerate;
  Alcotest.(check bool) "degenerate shapes agree" true
    (Cup_obs.Analyzer.Streaming.finish st
    = Cup_obs.Analyzer.analyze degenerate)

let test_timeseries_rejects_bad_interval () =
  let live = Runner.Live.create quiet_base in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Timeseries.attach: interval must be > 0") (fun () ->
      ignore (Timeseries.attach ~interval:0. live));
  ignore (Runner.Live.finish live)

(* {1 HTTP server} *)

module Http_server = Cup_obs.Http_server
module Serve = Cup_obs.Serve
module Resource = Cup_obs.Resource
module Audit = Cup_obs.Audit
module Registry = Cup_metrics.Registry

let test_http_server_smoke () =
  let srv =
    Http_server.start ~port:0
      ~routes:
        [
          ( "/ping",
            fun query ->
              let x =
                match List.assoc_opt "x" query with Some v -> v | None -> "-"
              in
              Http_server.text ("pong " ^ x) );
          ("/boom", fun _ -> failwith "handler exploded");
        ]
      ()
  in
  let port = Http_server.port srv in
  Alcotest.(check bool) "ephemeral port bound" true (port > 0);
  (match Http_server.get ~port "/ping?x=7" with
  | Ok (status, body) ->
      Alcotest.(check int) "ping status" 200 status;
      Alcotest.(check string) "ping body" "pong 7" body
  | Error e -> Alcotest.fail ("ping: " ^ e));
  (match Http_server.get ~port "/ping" with
  | Ok (status, body) ->
      Alcotest.(check int) "no-query status" 200 status;
      Alcotest.(check string) "no-query body" "pong -" body
  | Error e -> Alcotest.fail ("ping no-query: " ^ e));
  (match Http_server.get ~port "/missing" with
  | Ok (status, _) -> Alcotest.(check int) "unknown path" 404 status
  | Error e -> Alcotest.fail ("missing: " ^ e));
  (match Http_server.get ~port "/boom" with
  | Ok (status, _) -> Alcotest.(check int) "handler exception" 500 status
  | Error e -> Alcotest.fail ("boom: " ^ e));
  Http_server.stop srv;
  Http_server.stop srv (* idempotent *)

let field_bool name j =
  match Option.bind (Json.member name j) Json.to_bool with
  | Some b -> b
  | None -> Alcotest.fail ("missing bool field " ^ name)

let field_float name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> f
  | None -> Alcotest.fail ("missing float field " ^ name)

(* Run one simulation with all the serving machinery attached; the
   finished /metrics must lead with the exact deterministic exposition
   and carry only cup_process_* families after it. *)
let test_serve_endpoints () =
  let cfg = { base with Scenario.seed = 2002 } in
  let live = Runner.Live.create cfg in
  let registry = Registry.create () in
  Runner.Live.set_metrics live (Some registry);
  let process = Registry.create () in
  let resource = Resource.attach ~interval:200. ~registry:process live in
  let srv = Serve.start ~refresh:100. ~resource:process ~registry live in
  Sink.attach live (Serve.sink srv);
  let port = Serve.port srv in
  Runner.Live.run_until live 650.;
  let health_json body =
    match Json.of_string body with
    | Ok json -> json
    | Error e -> Alcotest.fail ("health parse: " ^ e)
  in
  let mid_vt =
    match Http_server.get ~port "/health" with
    | Ok (200, body) ->
        let j = health_json body in
        Alcotest.(check bool) "mid-run not finished" false
          (field_bool "finished" j);
        let vt = field_float "virtual_time" j in
        Alcotest.(check bool) "virtual time advancing" true (vt > 0.);
        vt
    | Ok (status, _) ->
        Alcotest.fail (Printf.sprintf "mid-run health status %d" status)
    | Error e -> Alcotest.fail ("mid-run health: " ^ e)
  in
  ignore (Runner.Live.finish live);
  Resource.sample_now resource;
  Serve.mark_finished srv;
  (match Http_server.get ~port "/health" with
  | Ok (200, body) ->
      let j = health_json body in
      Alcotest.(check bool) "finished flag" true (field_bool "finished" j);
      Alcotest.(check bool) "virtual time advanced past mid-run" true
        (field_float "virtual_time" j >= mid_vt)
  | Ok (status, _) ->
      Alcotest.fail (Printf.sprintf "final health status %d" status)
  | Error e -> Alcotest.fail ("final health: " ^ e));
  (match Http_server.get ~port "/metrics" with
  | Ok (200, body) ->
      let deterministic = Registry.to_prometheus registry in
      let dlen = String.length deterministic in
      Alcotest.(check bool) "scrape at least as long" true
        (String.length body >= dlen);
      Alcotest.(check string) "deterministic families byte-identical"
        deterministic (String.sub body 0 dlen);
      let rest = String.sub body dlen (String.length body - dlen) in
      List.iter
        (fun line ->
          if String.trim line <> "" then
            Alcotest.(check bool)
              (Printf.sprintf "resource-only suffix: %s" line)
              true
              (String.length line > 0
              && (line.[0] = '#'
                  || String.starts_with ~prefix:"cup_process_" line)))
        (String.split_on_char '\n' rest);
      Alcotest.(check bool) "resource families present" true
        (List.exists
           (String.starts_with ~prefix:"cup_process_peak_rss_bytes")
           (String.split_on_char '\n' rest))
  | Ok (status, _) ->
      Alcotest.fail (Printf.sprintf "metrics status %d" status)
  | Error e -> Alcotest.fail ("metrics: " ^ e));
  (match Http_server.get ~port "/trace?n=5" with
  | Ok (200, body) ->
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' body)
      in
      Alcotest.(check bool) "trace tail non-empty, bounded" true
        (List.length lines > 0 && List.length lines <= 5);
      List.iter
        (fun line ->
          match Event_json.of_string line with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("trace line: " ^ e))
        lines
  | Ok (status, _) ->
      Alcotest.fail (Printf.sprintf "trace status %d" status)
  | Error e -> Alcotest.fail ("trace: " ^ e));
  Serve.stop srv

(* Serving must not perturb the simulation: the registry exposition of
   a served run equals that of a bare run of the same scenario. *)
let test_serve_does_not_perturb_metrics () =
  let cfg = { base with Scenario.seed = 2003 } in
  let bare =
    let live = Runner.Live.create cfg in
    let registry = Registry.create () in
    Runner.Live.set_metrics live (Some registry);
    ignore (Runner.Live.finish live);
    Registry.to_prometheus registry
  in
  let served =
    let live = Runner.Live.create cfg in
    let registry = Registry.create () in
    Runner.Live.set_metrics live (Some registry);
    let process = Registry.create () in
    let resource = Resource.attach ~interval:150. ~registry:process live in
    let srv = Serve.start ~refresh:75. ~resource:process ~registry live in
    Sink.attach live (Serve.sink srv);
    ignore (Runner.Live.finish live);
    Resource.sample_now resource;
    Serve.mark_finished srv;
    Serve.stop srv;
    Registry.to_prometheus registry
  in
  Alcotest.(check string) "served run byte-identical to bare run" bare served

(* {1 Resource telemetry} *)

let test_resource_snapshot_sane () =
  let s1 = Resource.snapshot () in
  let junk = ref [] in
  for i = 0 to 99_999 do
    junk := (i, float_of_int i) :: !junk
  done;
  ignore (Sys.opaque_identity !junk);
  let s2 = Resource.snapshot () in
  Alcotest.(check bool) "minor words monotone" true
    (s2.Resource.minor_words >= s1.Resource.minor_words);
  Alcotest.(check bool) "allocation visible" true
    (s2.Resource.minor_words > s1.Resource.minor_words);
  Alcotest.(check bool) "heap words positive" true (s2.Resource.heap_words > 0);
  Alcotest.(check bool) "rss non-negative" true (s2.Resource.rss_bytes >= 0);
  if s2.Resource.rss_bytes > 0 then
    Alcotest.(check bool) "peak >= current rss" true
      (s2.Resource.peak_rss_bytes >= s2.Resource.rss_bytes)

let test_resource_registry_namespace () =
  let live = Runner.Live.create quiet_base in
  let registry = Registry.create () in
  let sampler = Resource.attach ~interval:300. ~registry live in
  ignore (Runner.Live.finish live);
  Resource.sample_now sampler;
  let exposition = Registry.to_prometheus registry in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "cup_process_ prefix: %s" line)
          true
          (String.starts_with ~prefix:"cup_process_" line
          || String.starts_with ~prefix:"# HELP cup_process_" line
          || String.starts_with ~prefix:"# TYPE cup_process_" line))
    (String.split_on_char '\n' exposition);
  Alcotest.(check bool) "sampler saw a peak" true
    (Resource.peak_rss_bytes sampler >= 0);
  Alcotest.(check bool) "pending high-water sampled" true
    (Resource.pending_high_water sampler >= 0)

(* {1 Online invariant auditor} *)

let faulty_audit_base =
  {
    base with
    Scenario.seed = 31;
    crashes =
      Some { Scenario.crash_rate = 0.02; recover_after = 20.; warmup = 30. };
    loss = Some { Scenario.drop = 0.15; jitter = 0.5 };
  }

let run_audited cfg =
  let live = Runner.Live.create cfg in
  let auditor =
    Audit.create ~max_backlog:100_000
      ~backlog:(fun () -> Runner.Live.justification_backlog live)
      ~counters:(Runner.Live.counters live)
      ()
  in
  Sink.attach live (Audit.sink auditor);
  let r = Runner.Live.finish live in
  Audit.finish auditor;
  (auditor, r)

let test_audit_clean_runs_pass () =
  List.iter
    (fun scheduler ->
      let auditor, _ =
        run_audited { faulty_audit_base with Scenario.scheduler }
      in
      Alcotest.(check bool) "events were checked" true
        (Audit.events_checked auditor > 0))
    [ None; Some `Calendar ]

let check_violation name code f =
  match f () with
  | () -> Alcotest.fail (name ^ ": expected a violation")
  | exception Audit.Violation v ->
      Alcotest.(check string) (name ^ " code") code v.Audit.code

let delivered ~at ~span ~parent ~entries =
  Trace.Update_delivered
    {
      at = Time.of_seconds at;
      from_ = Node_id.of_int 9;
      to_ = Node_id.of_int 4;
      key = Key.of_int 3;
      kind = Cup_proto.Update.Refresh;
      level = 1;
      answering = false;
      entries;
      trace_id = 1;
      span_id = span;
      parent_id = parent;
    }

let test_audit_catches_stale_delivery () =
  let a = Audit.create ~counters:(Counters.create ()) () in
  Audit.observe a (delivered ~at:100. ~span:1 ~parent:0 ~entries:[ (1, 500.) ]);
  check_violation "stale refresh" "V2" (fun () ->
      Audit.observe a
        (delivered ~at:110. ~span:2 ~parent:0 ~entries:[ (1, 400.) ]))

let test_audit_exempts_expired_entries () =
  let a = Audit.create ~counters:(Counters.create ()) () in
  Audit.observe a (delivered ~at:100. ~span:1 ~parent:0 ~entries:[ (1, 500.) ]);
  (* expired on arrival: the receiver drops it, so no regression *)
  Audit.observe a (delivered ~at:600. ~span:2 ~parent:0 ~entries:[ (1, 450.) ]);
  Alcotest.(check int) "both events checked" 2 (Audit.events_checked a)

let test_audit_catches_orphan_span () =
  let a = Audit.create ~counters:(Counters.create ()) () in
  check_violation "orphan parent" "V4" (fun () ->
      Audit.observe a
        (delivered ~at:50. ~span:7 ~parent:99 ~entries:[ (1, 300.) ]));
  let b = Audit.create ~counters:(Counters.create ()) () in
  Audit.observe b (delivered ~at:50. ~span:7 ~parent:0 ~entries:[ (1, 300.) ]);
  check_violation "duplicate span" "V4" (fun () ->
      Audit.observe b
        (delivered ~at:51. ~span:7 ~parent:0 ~entries:[ (2, 300.) ]))

let test_audit_catches_conservation_leak () =
  let counters = Counters.create () in
  let a = Audit.create ~counters () in
  Counters.record_sent counters;
  Audit.observe a (delivered ~at:10. ~span:1 ~parent:0 ~entries:[]);
  (* one message still in flight once the run is over: V1 at finish *)
  check_violation "undelivered message" "V1" (fun () -> Audit.finish a)

let test_audit_catches_backlog_breach () =
  let a =
    Audit.create ~max_backlog:3
      ~backlog:(fun () -> 10)
      ~check_every:1
      ~counters:(Counters.create ())
      ()
  in
  check_violation "backlog bound" "V3" (fun () ->
      Audit.observe a (delivered ~at:5. ~span:1 ~parent:0 ~entries:[]))

(* {1 HTTP loopback framing} *)

(* The client reads exactly Content-Length bytes, so a mis-framed
   response would corrupt the second request on the same server;
   two back-to-back requests with exact body checks pin both the
   framing and the 404 body. *)
let test_http_two_request_loopback () =
  let body_with_newlines = "line one\nline two\n\nend\n" in
  let srv =
    Http_server.start ~port:0
      ~routes:[ ("/doc", fun _ -> Http_server.text body_with_newlines) ]
      ()
  in
  let port = Http_server.port srv in
  Fun.protect
    ~finally:(fun () -> Http_server.stop srv)
    (fun () ->
      (match Http_server.get ~port "/doc" with
      | Ok (status, body) ->
          Alcotest.(check int) "first request status" 200 status;
          Alcotest.(check string) "body survives framing exactly"
            body_with_newlines body
      | Error e -> Alcotest.fail ("first request: " ^ e));
      match Http_server.get ~port "/nowhere" with
      | Ok (status, body) ->
          Alcotest.(check int) "second request is a 404" 404 status;
          Alcotest.(check string) "404 carries its documented body"
            "not found\n" body
      | Error e -> Alcotest.fail ("second request: " ^ e))

(* {1 Per-key activity in the analyzer} *)

let multikey =
  { faulty with Scenario.total_keys_override = Some 3; query_rate = 1.5 }

let test_analyzer_per_key_activity () =
  let bytes, _ = trace_bytes multikey in
  let events = events_of_bytes bytes in
  let s = Cup_obs.Analyzer.analyze events in
  Alcotest.(check bool) "several keys active" true (List.length s.per_key > 1);
  let keys = List.map fst s.per_key in
  Alcotest.(check bool) "sorted by key" true (List.sort compare keys = keys);
  let sum get =
    List.fold_left (fun acc (_, ks) -> acc + get ks) 0 s.per_key
  in
  Alcotest.(check int) "per-key hits sum to the total" s.hits
    (sum (fun ks -> ks.Cup_obs.Analyzer.k_hits));
  Alcotest.(check int) "per-key misses sum to the total" s.misses
    (sum (fun ks -> ks.Cup_obs.Analyzer.k_misses));
  Alcotest.(check int)
    "every event is either keyed or a membership event" s.events
    (sum (fun ks -> ks.Cup_obs.Analyzer.k_events) + s.membership);
  (* the streaming pass carries the same per-key table, and the
     rendered summary prints it *)
  let st = Cup_obs.Analyzer.Streaming.create () in
  List.iter (Cup_obs.Analyzer.Streaming.feed st) events;
  let streamed = Cup_obs.Analyzer.Streaming.finish st in
  Alcotest.(check bool) "streaming per-key table equal" true
    (streamed.per_key = s.per_key);
  let rendered = Format.asprintf "%a" (Cup_obs.Analyzer.pp_summary ?max_traces:None) s in
  Alcotest.(check bool) "summary prints the per-key table" true
    (let needle = "per-key:" in
     let n = String.length needle and h = String.length rendered in
     let rec scan i =
       i + n <= h && (String.sub rendered i n = needle || scan (i + 1))
     in
     scan 0)

(* {1 Cost attribution} *)

module Attribution = Cup_metrics.Attribution
module Topk = Cup_obs.Topk

(* Capacity 256 covers every key, node and level id in [faulty], so
   the sketches stay in the exact regime — the setting under which the
   byte-identity guarantees are unconditional. *)
let attributed_run cfg =
  let live = Runner.Live.create cfg in
  let a =
    Attribution.create
      ~config:{ Attribution.default_config with capacity = 256 }
      ()
  in
  Runner.Live.set_attribution live (Some a);
  let r = Runner.Live.finish live in
  (a, r)

let render_attribution a =
  String.concat "\n"
    [
      Topk.table a ~by:Attribution.Key;
      Topk.table a ~by:Attribution.Node;
      Topk.table a ~by:Attribution.Level;
      Topk.csv a;
      Topk.prometheus a;
      Json.to_string (Topk.json a);
    ]

let test_attribution_deterministic_across_schedulers () =
  let heap, _ = attributed_run { multikey with scheduler = Some `Heap } in
  let cal, _ = attributed_run { multikey with scheduler = Some `Calendar } in
  let heap = render_attribution heap and cal = render_attribution cal in
  Alcotest.(check bool) "rendering nonempty" true (String.length heap > 0);
  Alcotest.(check bool) "byte-identical heap vs calendar" true (heap = cal)

let test_attribution_deterministic_across_jobs () =
  let seeds = [ 3001; 3002; 3003; 3004 ] in
  let merged jobs =
    let parts =
      Cup_parallel.Pool.with_pool ~jobs (fun pool ->
          Cup_parallel.Pool.map pool
            (fun seed -> fst (attributed_run { multikey with seed }))
            seeds)
    in
    match parts with
    | [] -> assert false
    | first :: rest ->
        render_attribution (List.fold_left Attribution.merge first rest)
  in
  Alcotest.(check bool) "jobs=1 and jobs=4 identical after merge" true
    (merged 1 = merged 4)

let test_attribution_matches_counters_and_trace () =
  let plain, _ = trace_bytes multikey in
  let buf = Buffer.create 4096 in
  let live = Runner.Live.create multikey in
  let a = Attribution.create () in
  Runner.Live.set_attribution live (Some a);
  Runner.Live.set_tracer live
    (Some
       (fun e ->
         Buffer.add_string buf (Event_json.to_string e);
         Buffer.add_char buf '\n'));
  let r = Runner.Live.finish live in
  Alcotest.(check bool) "attribution does not perturb the trace" true
    (plain = Buffer.contents buf);
  let tot m = Attribution.total a ~by:Attribution.Key ~metric:m in
  Alcotest.(check int) "hits" (Counters.hits r.counters)
    (tot Attribution.Metric.hits);
  Alcotest.(check int) "misses" (Counters.misses r.counters)
    (tot Attribution.Metric.misses);
  Alcotest.(check int) "miss-cost hops"
    (Counters.miss_cost r.counters)
    (tot Attribution.Metric.miss_hops);
  Alcotest.(check int) "overhead hops"
    (Counters.overhead_cost r.counters)
    (tot Attribution.Metric.overhead_hops);
  (* the node axis ledgers the same events, attributed to receivers *)
  Alcotest.(check int) "node axis sees the same overhead"
    (Counters.overhead_cost r.counters)
    (Attribution.total a ~by:Attribution.Node
       ~metric:Attribution.Metric.overhead_hops)

let test_serve_topk_endpoint () =
  let cfg = { multikey with Scenario.seed = 2005 } in
  let live = Runner.Live.create cfg in
  let registry = Registry.create () in
  Runner.Live.set_metrics live (Some registry);
  let a = Attribution.create () in
  Runner.Live.set_attribution live (Some a);
  let srv = Serve.start ~refresh:100. ~registry live in
  let port = Serve.port srv in
  ignore (Runner.Live.finish live);
  Serve.mark_finished srv;
  (match Http_server.get ~port "/topk" with
  | Ok (200, body) -> (
      match Json.of_string body with
      | Error e -> Alcotest.fail ("topk parse: " ^ e)
      | Ok j ->
          Alcotest.(check string) "snapshot is the Topk document"
            (Json.to_string (Topk.json a))
            body;
          List.iter
            (fun axis ->
              match Json.member axis j with
              | Some (Json.Obj _) -> ()
              | _ -> Alcotest.fail ("missing axis object: " ^ axis))
            [ "key"; "node"; "level" ];
          let top_nonempty =
            match Option.bind (Json.member "key" j) (Json.member "top") with
            | Some (Json.List (_ :: _)) -> true
            | _ -> false
          in
          Alcotest.(check bool) "key axis has entries" true top_nonempty)
  | Ok (status, _) -> Alcotest.fail (Printf.sprintf "topk status %d" status)
  | Error e -> Alcotest.fail ("topk: " ^ e));
  (match Http_server.get ~port "/metrics" with
  | Ok (200, body) ->
      Alcotest.(check bool) "capped per-key families exposed" true
        (let needle = "cup_key_attr_total" in
         let n = String.length needle and h = String.length body in
         let rec scan i =
           i + n <= h && (String.sub body i n = needle || scan (i + 1))
         in
         scan 0)
  | Ok (status, _) -> Alcotest.fail (Printf.sprintf "metrics status %d" status)
  | Error e -> Alcotest.fail ("metrics: " ^ e));
  Serve.stop srv

let test_serve_topk_detached () =
  let live = Runner.Live.create { base with Scenario.seed = 2006 } in
  let registry = Registry.create () in
  Runner.Live.set_metrics live (Some registry);
  let srv = Serve.start ~refresh:100. ~registry live in
  let port = Serve.port srv in
  ignore (Runner.Live.finish live);
  Serve.mark_finished srv;
  (match Http_server.get ~port "/topk" with
  | Ok (200, body) ->
      Alcotest.(check string) "detached run reports no attribution"
        "{\"attribution\":false}" body
  | Ok (status, _) -> Alcotest.fail (Printf.sprintf "topk status %d" status)
  | Error e -> Alcotest.fail ("topk: " ^ e));
  Serve.stop srv

(* {1 Multi-run metrics merge} *)

let test_replicate_metrics_deterministic () =
  let module E = Cup_sim.Experiments in
  let cfg = { base with Scenario.seed = 77 } in
  let stats_seq, reg_seq = E.replicate_metrics cfg ~runs:3 in
  let stats_pool, reg_pool =
    Cup_parallel.Pool.with_pool ~jobs:2 (fun pool ->
        E.replicate_metrics ~pool cfg ~runs:3)
  in
  let stats_cal, reg_cal =
    E.replicate_metrics
      { cfg with Scenario.scheduler = Some `Calendar }
      ~runs:3
  in
  Alcotest.(check bool) "stats identical across jobs" true
    (stats_seq = stats_pool);
  Alcotest.(check bool) "stats identical across schedulers" true
    (stats_seq = stats_cal);
  Alcotest.(check string) "merged exposition identical across jobs"
    (Registry.to_prometheus reg_seq)
    (Registry.to_prometheus reg_pool);
  Alcotest.(check string) "merged exposition identical across schedulers"
    (Registry.to_prometheus reg_seq)
    (Registry.to_prometheus reg_cal);
  (* the merge is a real aggregate: three runs' hop counters summed *)
  let single =
    let live = Runner.Live.create cfg in
    let registry = Registry.create () in
    Runner.Live.set_metrics live (Some registry);
    ignore (Runner.Live.finish live);
    registry
  in
  Alcotest.(check bool) "merged exposition differs from a single run" true
    (Registry.to_prometheus reg_seq <> Registry.to_prometheus single)

let () =
  Alcotest.run "cup_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "float precision" `Quick
            test_json_float_precision;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "event json",
        [
          QCheck_alcotest.to_alcotest prop_event_json_roundtrip;
          Alcotest.test_case "legacy id-less parse" `Quick
            test_event_json_legacy_parse;
          Alcotest.test_case "rejects bad events" `Quick
            test_event_json_rejects_bad_events;
        ] );
      ( "spans",
        [
          Alcotest.test_case "deterministic across schedulers" `Quick
            test_spans_deterministic_across_schedulers;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_spans_deterministic_across_jobs;
          Alcotest.test_case "metrics do not perturb trace" `Quick
            test_metrics_attachment_keeps_trace_bytes;
          Alcotest.test_case "registry deterministic across schedulers" `Quick
            test_registry_deterministic_across_schedulers;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "no orphans under faults" `Quick
            test_analyzer_no_orphans_under_faults;
          Alcotest.test_case "latency matches counters" `Quick
            test_analyzer_latency_matches_counters;
          Alcotest.test_case "legacy and orphans" `Quick
            test_analyzer_handles_legacy_and_orphans;
          Alcotest.test_case "streaming matches legacy" `Quick
            test_streaming_analyzer_matches_legacy;
        ] );
      ( "binary trace",
        [
          QCheck_alcotest.to_alcotest prop_binary_roundtrip;
          Alcotest.test_case "scale and line records" `Quick
            test_binary_scale_and_line_roundtrip;
          Alcotest.test_case "tiny-buffer writer ordering" `Quick
            test_binary_writer_tiny_buffer_ordering;
          Alcotest.test_case "reader classifies both formats" `Quick
            test_trace_reader_classifies_both_formats;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "fanout and counts" `Quick
            test_sink_fanout_and_counts;
          Alcotest.test_case "jsonl round trip" `Quick
            test_jsonl_sink_roundtrip;
          Alcotest.test_case "live run matches counters" `Quick
            test_jsonl_sink_on_live_run_matches_counters;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "deltas sum to totals" `Quick
            test_timeseries_deltas_sum_to_totals;
          Alcotest.test_case "deterministic csv" `Quick
            test_timeseries_deterministic_and_csv;
          Alcotest.test_case "token-bucket queue depths" `Quick
            test_timeseries_queue_depths_under_token_bucket;
          Alcotest.test_case "bad interval" `Quick
            test_timeseries_rejects_bad_interval;
        ] );
      ( "http",
        [
          Alcotest.test_case "server smoke" `Quick test_http_server_smoke;
          Alcotest.test_case "two-request loopback framing" `Quick
            test_http_two_request_loopback;
          Alcotest.test_case "serve endpoints" `Quick test_serve_endpoints;
          Alcotest.test_case "serving does not perturb metrics" `Quick
            test_serve_does_not_perturb_metrics;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "per-key analyzer activity" `Quick
            test_analyzer_per_key_activity;
          Alcotest.test_case "deterministic across schedulers" `Quick
            test_attribution_deterministic_across_schedulers;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_attribution_deterministic_across_jobs;
          Alcotest.test_case "matches counters, keeps trace bytes" `Quick
            test_attribution_matches_counters_and_trace;
          Alcotest.test_case "/topk endpoint" `Quick test_serve_topk_endpoint;
          Alcotest.test_case "/topk detached" `Quick test_serve_topk_detached;
        ] );
      ( "resource",
        [
          Alcotest.test_case "snapshot sane" `Quick test_resource_snapshot_sane;
          Alcotest.test_case "registry namespace" `Quick
            test_resource_registry_namespace;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean fault runs pass" `Quick
            test_audit_clean_runs_pass;
          Alcotest.test_case "catches stale delivery" `Quick
            test_audit_catches_stale_delivery;
          Alcotest.test_case "exempts expired entries" `Quick
            test_audit_exempts_expired_entries;
          Alcotest.test_case "catches orphan span" `Quick
            test_audit_catches_orphan_span;
          Alcotest.test_case "catches conservation leak" `Quick
            test_audit_catches_conservation_leak;
          Alcotest.test_case "catches backlog breach" `Quick
            test_audit_catches_backlog_breach;
        ] );
      ( "replicate-metrics",
        [
          Alcotest.test_case "deterministic merge" `Quick
            test_replicate_metrics_deterministic;
        ] );
    ]
