(* Tests for Cup_obs: JSON codec, trace sinks, and in-run time-series
   sampling. *)

module Json = Cup_obs.Json
module Event_json = Cup_obs.Event_json
module Sink = Cup_obs.Sink
module Timeseries = Cup_obs.Timeseries
module Trace = Cup_sim.Trace
module Runner = Cup_sim.Runner
module Scenario = Cup_sim.Scenario
module Counters = Cup_metrics.Counters
module Policy = Cup_proto.Policy
module Time = Cup_dess.Time
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key

let base =
  {
    Scenario.default with
    nodes = 48;
    total_keys_override = Some 1;
    query_rate = 0.5;
    query_start = 300.;
    query_duration = 900.;
    drain = 300.;
    seed = 1001;
  }

(* {1 JSON} *)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 3.25;
      Json.Float 300.39042724950792;
      Json.String "plain";
      Json.String "with \"quotes\", \\slashes\\ and\nnewlines\t";
      Json.List [ Json.Int 1; Json.Bool false; Json.Null ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Float 0.5 ]) ]);
        ];
      Json.List [];
      Json.Obj [];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' ->
          Alcotest.(check string)
            ("round-trip " ^ s) s (Json.to_string v')
      | Error e -> Alcotest.fail (Printf.sprintf "parse %s: %s" s e))
    cases

let test_json_float_precision () =
  (* floats survive print/parse exactly, including awkward ones *)
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
          Alcotest.(check bool) (Printf.sprintf "%h exact" f) true (f = f')
      | Ok (Json.Int i) ->
          Alcotest.(check bool) "integral float" true (float_of_int i = f)
      | Ok _ -> Alcotest.fail "wrong constructor"
      | Error e -> Alcotest.fail e)
    [ 0.; 1. /. 3.; 300.39042724950792; 1e-9; 123456789.123456789; 1e22 ]

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "1 2"; "nul"; "\"unterminated" ]

(* {1 Event JSON round-trip} *)

let all_events =
  let at = Time.of_seconds 350.125 in
  let n i = Node_id.of_int i in
  let k = Key.of_int 3 in
  [
    Trace.Query_posted { at; node = n 4; key = k };
    Trace.Query_forwarded { at; from_ = n 4; to_ = n 9; key = k };
    Trace.Update_delivered
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        kind = Cup_proto.Update.First_time;
        level = 1;
        answering = true;
      };
    Trace.Update_delivered
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        kind = Cup_proto.Update.Refresh;
        level = 3;
        answering = false;
      };
    Trace.Update_delivered
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        kind = Cup_proto.Update.Delete;
        level = 2;
        answering = false;
      };
    Trace.Update_delivered
      {
        at;
        from_ = n 9;
        to_ = n 4;
        key = k;
        kind = Cup_proto.Update.Append;
        level = 7;
        answering = false;
      };
    Trace.Clear_bit_delivered { at; from_ = n 4; to_ = n 9; key = k };
    Trace.Local_answer { at; node = n 4; key = k; hit = false; waiters = 2 };
    Trace.Node_crashed { at; node = n 9 };
    Trace.Node_recovered { at; node = n 16 };
    Trace.Message_lost { at; from_ = n 9; to_ = n 4; key = k };
    Trace.Repair_query { at; node = n 4; key = k; attempt = 2 };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun event ->
      let line = Event_json.to_string event in
      match Event_json.of_string line with
      | Ok event' ->
          Alcotest.(check bool) line true (event = event');
          (* the line is one self-describing object with a type field *)
          (match Json.of_string line with
          | Ok j ->
              Alcotest.(check bool) "has type field" true
                (Option.is_some
                   (Option.bind (Json.member "type" j) Json.to_str))
          | Error e -> Alcotest.fail e)
      | Error e -> Alcotest.fail (line ^ ": " ^ e))
    all_events

let test_event_json_rejects_bad_events () =
  List.iter
    (fun s ->
      match Event_json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [
      "{}";
      "{\"type\":\"warp_drive\",\"at\":1.0}";
      "{\"type\":\"query_posted\",\"at\":1.0,\"node\":1}";
      "{\"type\":\"query_posted\",\"at\":1.0,\"node\":-1,\"key\":0}";
      "{\"type\":\"update_delivered\",\"at\":1.0,\"from\":0,\"to\":1,\
       \"key\":0,\"kind\":\"sideways\",\"level\":1,\"answering\":false}";
      "not json at all";
    ]

(* {1 Sinks} *)

let test_sink_fanout_and_counts () =
  let ring_a = Trace.create ~capacity:4 () in
  let ring_b = Trace.create ~capacity:100 () in
  let a = Sink.ring ring_a and b = Sink.ring ring_b in
  let fan = Sink.fanout [ a; b ] in
  List.iter (Sink.emit fan) all_events;
  Alcotest.(check int) "fanout saw all" (List.length all_events)
    (Sink.events_seen fan);
  Alcotest.(check int) "child a saw all" (List.length all_events)
    (Sink.events_seen a);
  Alcotest.(check int) "small ring kept capacity" 4 (Trace.length ring_a);
  Alcotest.(check int) "big ring kept everything" (List.length all_events)
    (Trace.length ring_b);
  Sink.close fan;
  Sink.close fan;
  (* idempotent *)
  Alcotest.check_raises "emit after close"
    (Invalid_argument "Sink.emit: sink is closed") (fun () ->
      Sink.emit fan (List.hd all_events))

let test_jsonl_sink_roundtrip () =
  (* write a synthetic stream, read it back line by line *)
  let path = Filename.temp_file "cup_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Sink.jsonl_file path in
      List.iter (Sink.emit sink) all_events;
      Sink.close sink;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed =
        List.rev_map
          (fun line ->
            match Event_json.of_string line with
            | Ok e -> e
            | Error msg -> Alcotest.fail (line ^ ": " ^ msg))
          !lines
      in
      Alcotest.(check bool) "events survive the file round-trip" true
        (parsed = all_events))

let test_jsonl_sink_on_live_run_matches_counters () =
  (* stream a whole simulation to JSONL; re-read it and check the
     per-type event counts against the run's own accounting *)
  let path = Filename.temp_file "cup_run" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let live = Runner.Live.create (Scenario.with_policy base Policy.second_chance) in
      let sink = Sink.jsonl_file path in
      Sink.attach live sink;
      let r = Runner.Live.finish live in
      Sink.close sink;
      let counts = Hashtbl.create 8 in
      let total = ref 0 in
      let ic = open_in path in
      (try
         while true do
           let line = input_line ic in
           incr total;
           match Event_json.of_string line with
           | Error msg -> Alcotest.fail (line ^ ": " ^ msg)
           | Ok event ->
               let typ =
                 match event with
                 | Trace.Query_posted _ -> "query_posted"
                 | Trace.Query_forwarded _ -> "query_forwarded"
                 | Trace.Update_delivered _ -> "update_delivered"
                 | Trace.Clear_bit_delivered _ -> "clear_bit"
                 | Trace.Local_answer _ -> "local_answer"
                 | Trace.Node_crashed _ -> "node_crashed"
                 | Trace.Node_recovered _ -> "node_recovered"
                 | Trace.Message_lost _ -> "message_lost"
                 | Trace.Repair_query _ -> "repair_query"
               in
               Hashtbl.replace counts typ
                 (1 + Option.value ~default:0 (Hashtbl.find_opt counts typ))
         done
       with End_of_file -> close_in ic);
      let count typ = Option.value ~default:0 (Hashtbl.find_opt counts typ) in
      Alcotest.(check int) "sink saw every line it wrote" !total
        (Sink.events_seen sink);
      Alcotest.(check int) "query hops" (Counters.query_hops r.counters)
        (count "query_forwarded");
      Alcotest.(check int) "delivered updates"
        (Counters.first_time_answer_hops r.counters
        + Counters.first_time_proactive_hops r.counters
        + Counters.refresh_hops r.counters
        + Counters.delete_hops r.counters
        + Counters.append_hops r.counters)
        (count "update_delivered");
      Alcotest.(check int) "clear-bits"
        (Counters.clear_bit_hops r.counters)
        (count "clear_bit"))

(* {1 Time series} *)

let quiet_base =
  (* all protocol activity finishes well before sim_end, so the last
     sample tick sees the final counter values *)
  Scenario.with_policy
    {
      base with
      query_duration = 400.;
      drain = 300.;
      replica_lifetime = 10000.;
    }
    Policy.Standard_caching

let test_timeseries_deltas_sum_to_totals () =
  let live = Runner.Live.create quiet_base in
  let ts = Timeseries.attach ~interval:50. live in
  let r = Runner.Live.finish live in
  let samples = Timeseries.samples ts in
  Alcotest.(check int) "one sample per interval" 20 (List.length samples);
  let sum get = List.fold_left (fun acc s -> acc + get s) 0 samples in
  Alcotest.(check int) "total cost deltas sum to the run total"
    (Counters.total_cost r.counters)
    (sum (fun (s : Timeseries.sample) -> s.total_cost));
  Alcotest.(check int) "miss deltas"
    (Counters.miss_cost r.counters)
    (sum (fun (s : Timeseries.sample) -> s.miss_cost));
  Alcotest.(check int) "hit deltas" (Counters.hits r.counters)
    (sum (fun (s : Timeseries.sample) -> s.hits));
  Alcotest.(check int) "miss count deltas" (Counters.misses r.counters)
    (sum (fun (s : Timeseries.sample) -> s.misses));
  (* timestamps advance by exactly one interval *)
  let rec check_spacing = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check (float 1e-9)) "spacing" 50.
          (b.Timeseries.at -. a.Timeseries.at);
        check_spacing rest
    | _ -> ()
  in
  check_spacing samples;
  (* sampling is pure observation: the run's costs match an
     unsampled run of the same scenario *)
  let plain = Runner.run quiet_base in
  Alcotest.(check int) "sampling does not perturb the run"
    (Counters.total_cost plain.counters)
    (Counters.total_cost r.counters)

let test_timeseries_deterministic_and_csv () =
  let rows_of () =
    let live = Runner.Live.create quiet_base in
    let ts = Timeseries.attach ~interval:50. live in
    ignore (Runner.Live.finish live);
    Timeseries.csv_rows ts
  in
  let a = rows_of () and b = rows_of () in
  Alcotest.(check bool) "same seed, identical rows" true (a = b);
  let path = Filename.temp_file "cup_ts" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let live = Runner.Live.create quiet_base in
      let ts = Timeseries.attach ~interval:50. live in
      ignore (Runner.Live.finish live);
      Timeseries.write_csv ts ~path;
      let ic = open_in path in
      let header = input_line ic in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> close_in ic);
      Alcotest.(check string) "header" (String.concat "," Timeseries.csv_header)
        header;
      Alcotest.(check int) "one line per sample"
        (List.length (Timeseries.samples ts))
        !n)

let test_timeseries_queue_depths_under_token_bucket () =
  let starved =
    Scenario.with_policy
      {
        base with
        replicas_per_key = 5;
        replica_lifetime = 60.;
        capacity_mode = Scenario.Token_bucket 0.05;
      }
      Policy.second_chance
  in
  let live = Runner.Live.create starved in
  let ts = Timeseries.attach ~interval:50. live in
  ignore (Runner.Live.finish live);
  Alcotest.(check bool) "starved channels show queued updates" true
    (List.exists
       (fun (s : Timeseries.sample) -> s.queued_updates > 0)
       (Timeseries.samples ts));
  Alcotest.(check bool) "max depth bounded by total" true
    (List.for_all
       (fun (s : Timeseries.sample) -> s.max_queue_depth <= s.queued_updates)
       (Timeseries.samples ts))

let test_timeseries_rejects_bad_interval () =
  let live = Runner.Live.create quiet_base in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Timeseries.attach: interval must be > 0") (fun () ->
      ignore (Timeseries.attach ~interval:0. live));
  ignore (Runner.Live.finish live)

let () =
  Alcotest.run "cup_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "float precision" `Quick
            test_json_float_precision;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "event json",
        [
          Alcotest.test_case "round trip" `Quick test_event_json_roundtrip;
          Alcotest.test_case "rejects bad events" `Quick
            test_event_json_rejects_bad_events;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "fanout and counts" `Quick
            test_sink_fanout_and_counts;
          Alcotest.test_case "jsonl round trip" `Quick
            test_jsonl_sink_roundtrip;
          Alcotest.test_case "live run matches counters" `Quick
            test_jsonl_sink_on_live_run_matches_counters;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "deltas sum to totals" `Quick
            test_timeseries_deltas_sum_to_totals;
          Alcotest.test_case "deterministic csv" `Quick
            test_timeseries_deterministic_and_csv;
          Alcotest.test_case "token-bucket queue depths" `Quick
            test_timeseries_queue_depths_under_token_bucket;
          Alcotest.test_case "bad interval" `Quick
            test_timeseries_rejects_bad_interval;
        ] );
    ]
