(* Tests for Cup_proto: policies, queues, interest vectors, and the
   node state machine — every case of Sections 2.5-2.7 plus the
   Section 3.6 replica-independent cut-off. *)

module Policy = Cup_proto.Policy
module Update = Cup_proto.Update
module Update_queue = Cup_proto.Update_queue
module Interest = Cup_proto.Interest
module Entry = Cup_proto.Entry
module Replica_id = Cup_proto.Replica_id
module Node = Cup_proto.Node
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key
module Time = Cup_dess.Time

let nid = Node_id.of_int
let key k = Key.of_int k
let rid = Replica_id.of_int
let entry ?(replica = 0) expiry =
  Entry.make ~replica:(rid replica) ~expiry:(Time.of_seconds expiry)

(* {1 Policy} *)

let decision = Alcotest.testable
    (fun fmt -> function
      | Policy.Keep -> Format.pp_print_string fmt "Keep"
      | Policy.Cut -> Format.pp_print_string fmt "Cut")
    ( = )

let test_policy_all_out_keeps () =
  Alcotest.check decision "always keep" Policy.Keep
    (Policy.decide Policy.All_out ~distance:30 ~queries_since_update:0
       ~dry_updates:100)

let test_policy_linear () =
  let p = Policy.Linear 0.5 in
  Alcotest.check decision "enough queries" Policy.Keep
    (Policy.decide p ~distance:10 ~queries_since_update:5 ~dry_updates:0);
  Alcotest.check decision "too few" Policy.Cut
    (Policy.decide p ~distance:10 ~queries_since_update:4 ~dry_updates:0);
  Alcotest.check decision "close to root is lenient" Policy.Keep
    (Policy.decide p ~distance:1 ~queries_since_update:1 ~dry_updates:0)

let test_policy_logarithmic () =
  let p = Policy.Logarithmic 2.0 in
  (* lg 8 = 3, threshold 6 *)
  Alcotest.check decision "at threshold" Policy.Keep
    (Policy.decide p ~distance:8 ~queries_since_update:6 ~dry_updates:0);
  Alcotest.check decision "below threshold" Policy.Cut
    (Policy.decide p ~distance:8 ~queries_since_update:5 ~dry_updates:0);
  (* lg 1 = 0: always popular at distance 1 *)
  Alcotest.check decision "distance 1" Policy.Keep
    (Policy.decide p ~distance:1 ~queries_since_update:0 ~dry_updates:0)

let test_policy_log_more_lenient_than_linear () =
  (* Same alpha: at distance 16, linear needs 16a queries, log needs
     4a — the paper's "logarithmic threshold is more lenient". *)
  let queries = 5 in
  Alcotest.check decision "linear cuts" Policy.Cut
    (Policy.decide (Policy.Linear 1.) ~distance:16
       ~queries_since_update:queries ~dry_updates:0);
  Alcotest.check decision "logarithmic keeps" Policy.Keep
    (Policy.decide (Policy.Logarithmic 1.) ~distance:16
       ~queries_since_update:queries ~dry_updates:0)

let test_policy_second_chance () =
  let p = Policy.second_chance in
  Alcotest.check decision "first dry update gets a second chance"
    Policy.Keep
    (Policy.decide p ~distance:5 ~queries_since_update:0 ~dry_updates:1);
  Alcotest.check decision "second dry update cuts" Policy.Cut
    (Policy.decide p ~distance:5 ~queries_since_update:0 ~dry_updates:2);
  Alcotest.check decision "queries reset the streak" Policy.Keep
    (Policy.decide p ~distance:5 ~queries_since_update:3 ~dry_updates:0)

let test_policy_sender_limit () =
  Alcotest.(check (option int)) "standard squelches at the root" (Some 0)
    (Policy.sender_limit Policy.Standard_caching);
  Alcotest.(check (option int)) "push level" (Some 7)
    (Policy.sender_limit (Policy.Push_level 7));
  Alcotest.(check (option int)) "second chance unbounded" None
    (Policy.sender_limit Policy.second_chance)

let test_policy_classification () =
  Alcotest.(check bool) "second-chance uses clear bits" true
    (Policy.uses_clear_bits Policy.second_chance);
  Alcotest.(check bool) "push-level does not" false
    (Policy.uses_clear_bits (Policy.Push_level 3));
  Alcotest.(check bool) "standard does not coalesce" false
    (Policy.coalesces_queries Policy.Standard_caching);
  Alcotest.(check bool) "cup coalesces" true
    (Policy.coalesces_queries Policy.All_out)

(* {1 Update} *)

let test_update_forwarded_increments_level () =
  let u = Update.refresh ~key:(key 1) ~entry:(entry 100.) ~level:3 in
  Alcotest.(check int) "level + 1" 4 (Update.forwarded u).Update.level

let test_update_subject () =
  let e = entry ~replica:9 50. in
  Alcotest.(check (option int)) "refresh subject" (Some 9)
    (Option.map Replica_id.to_int
       (Update.subject (Update.refresh ~key:(key 1) ~entry:e ~level:1)));
  Alcotest.(check (option int)) "first-time has none" None
    (Option.map Replica_id.to_int
       (Update.subject (Update.first_time ~key:(key 1) ~entries:[ e ] ~level:1)))

let test_update_expiry () =
  let u = Update.refresh ~key:(key 1) ~entry:(entry 10.) ~level:1 in
  Alcotest.(check bool) "fresh before expiry" false
    (Update.is_expired u ~now:(Time.of_seconds 9.));
  Alcotest.(check bool) "expired at expiry" true
    (Update.is_expired u ~now:(Time.of_seconds 10.));
  let d = Update.delete ~key:(key 1) ~entry:(entry 10.) ~level:1 in
  Alcotest.(check bool) "deletes never expire" false
    (Update.is_expired d ~now:(Time.of_seconds 99.));
  let ft = Update.first_time ~key:(key 1) ~entries:[] ~level:1 in
  Alcotest.(check bool) "first-time never expires" false
    (Update.is_expired ft ~now:(Time.of_seconds 99.))

(* {1 Update queue} *)

let kinds q = List.map (fun (u : Update.t) -> u.Update.kind) (Update_queue.peek_all q)

let test_queue_latency_first_ordering () =
  let q = Update_queue.create Update_queue.Latency_first in
  Update_queue.push q (Update.append ~key:(key 1) ~entry:(entry 100.) ~level:1);
  Update_queue.push q (Update.refresh ~key:(key 1) ~entry:(entry 100.) ~level:1);
  Update_queue.push q (Update.delete ~key:(key 1) ~entry:(entry 100.) ~level:1);
  Update_queue.push q (Update.first_time ~key:(key 1) ~entries:[ entry 100. ] ~level:1);
  Alcotest.(check (list string))
    "first-time > delete > refresh > append"
    [ "first-time"; "delete"; "refresh"; "append" ]
    (List.map Update.kind_to_string (kinds q))

let test_queue_flash_crowd_promotes_appends () =
  let q = Update_queue.create Update_queue.Flash_crowd in
  Update_queue.push q (Update.refresh ~key:(key 1) ~entry:(entry 100.) ~level:1);
  Update_queue.push q (Update.append ~key:(key 1) ~entry:(entry 100.) ~level:1);
  Update_queue.push q (Update.delete ~key:(key 1) ~entry:(entry 100.) ~level:1);
  Alcotest.(check (list string)) "append > delete > refresh"
    [ "append"; "delete"; "refresh" ]
    (List.map Update.kind_to_string (kinds q))

let test_queue_fifo () =
  let q = Update_queue.create Update_queue.Fifo in
  Update_queue.push q (Update.append ~key:(key 1) ~entry:(entry 100.) ~level:1);
  Update_queue.push q (Update.first_time ~key:(key 1) ~entries:[] ~level:1);
  Alcotest.(check (list string)) "insertion order"
    [ "append"; "first-time" ]
    (List.map Update.kind_to_string (kinds q))

let test_queue_expiry_urgency () =
  let q = Update_queue.create Update_queue.Latency_first in
  Update_queue.push q (Update.refresh ~key:(key 1) ~entry:(entry ~replica:1 200.) ~level:1);
  Update_queue.push q (Update.refresh ~key:(key 2) ~entry:(entry ~replica:2 50.) ~level:1);
  match Update_queue.pop q ~now:Time.zero with
  | Some u ->
      Alcotest.(check (option int)) "closest to expiry first" (Some 2)
        (Option.map Replica_id.to_int (Update.subject u))
  | None -> Alcotest.fail "queue should pop"

let test_queue_pop_drops_expired () =
  let q = Update_queue.create Update_queue.Latency_first in
  Update_queue.push q (Update.refresh ~key:(key 1) ~entry:(entry 10.) ~level:1);
  Update_queue.push q (Update.refresh ~key:(key 2) ~entry:(entry 100.) ~level:1);
  (match Update_queue.pop q ~now:(Time.of_seconds 50.) with
  | Some u -> Alcotest.(check int) "expired skipped" 2 (Key.to_int u.Update.key)
  | None -> Alcotest.fail "fresh update expected");
  Alcotest.(check bool) "drained" true (Update_queue.is_empty q)

let test_queue_drop_expired () =
  let q = Update_queue.create Update_queue.Fifo in
  Update_queue.push q (Update.refresh ~key:(key 1) ~entry:(entry 10.) ~level:1);
  Update_queue.push q (Update.refresh ~key:(key 2) ~entry:(entry 100.) ~level:1);
  Update_queue.push q (Update.append ~key:(key 3) ~entry:(entry 5.) ~level:1);
  Alcotest.(check int) "two dropped" 2
    (Update_queue.drop_expired q ~now:(Time.of_seconds 50.));
  Alcotest.(check int) "one left" 1 (Update_queue.length q)

let prop_queue_pop_order_stable =
  QCheck.Test.make ~count:200
    ~name:"queue pop order: rank, then expiry, then FIFO"
    QCheck.(list (pair (int_bound 3) (float_range 1. 1000.)))
    (fun items ->
      let q = Update_queue.create Update_queue.Latency_first in
      List.iteri
        (fun i (kind, expiry) ->
          let e = Entry.make ~replica:(rid i) ~expiry:(Time.of_seconds expiry) in
          let u =
            match kind with
            | 0 -> Update.first_time ~key:(key 1) ~entries:[ e ] ~level:1
            | 1 -> Update.delete ~key:(key 1) ~entry:e ~level:1
            | 2 -> Update.refresh ~key:(key 1) ~entry:e ~level:1
            | _ -> Update.append ~key:(key 1) ~entry:e ~level:1
          in
          Update_queue.push q u)
        items;
      let rank (u : Update.t) =
        match u.Update.kind with
        | Update.First_time -> 0
        | Update.Delete -> 1
        | Update.Refresh -> 2
        | Update.Append -> 3
      in
      let popped = Update_queue.peek_all q in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> rank a <= rank b && nondecreasing rest
        | _ -> true
      in
      nondecreasing popped && List.length popped = List.length items)

(* {1 Interest} *)

let test_interest_ops () =
  let i = Interest.create () in
  Alcotest.(check bool) "empty" false (Interest.any i);
  Interest.set i (nid 3);
  Interest.set i (nid 1);
  Interest.set i (nid 3);
  Alcotest.(check int) "set is idempotent" 2 (Interest.cardinal i);
  Alcotest.(check (list int)) "sorted" [ 1; 3 ]
    (List.map Node_id.to_int (Interest.interested i));
  Interest.clear i (nid 1);
  Alcotest.(check bool) "membership" false (Interest.is_set i (nid 1));
  Alcotest.(check bool) "others kept" true (Interest.is_set i (nid 3))

let test_interest_remap () =
  let i = Interest.create () in
  Interest.set i (nid 5);
  Interest.remap i ~old_id:(nid 5) ~new_id:(nid 9);
  Alcotest.(check (list int)) "bit moved" [ 9 ]
    (List.map Node_id.to_int (Interest.interested i));
  Interest.remap i ~old_id:(nid 5) ~new_id:(nid 7);
  Alcotest.(check (list int)) "remap of clear bit is no-op" [ 9 ]
    (List.map Node_id.to_int (Interest.interested i))

(* {1 Node state machine}

   Helpers to run handlers and classify the returned actions. *)

let cup_config = Node.default_config

let std_config =
  { Node.policy = Policy.Standard_caching; replica_independent_cutoff = true }

let queries_sent actions =
  List.filter_map
    (function Node.Send_query { to_; key } -> Some (to_, key) | _ -> None)
    actions

let updates_sent actions =
  List.filter_map
    (function
      | Node.Send_update { to_; update; answering } ->
          Some (to_, update, answering)
      | _ -> None)
    actions

let clear_bits_sent actions =
  List.filter_map
    (function Node.Send_clear_bit { to_; key } -> Some (to_, key) | _ -> None)
    actions

let local_answers actions =
  List.filter_map
    (function
      | Node.Answer_local { posted_at; hit; entries; _ } ->
          Some (posted_at, hit, entries)
      | _ -> None)
    actions

let t0 = Time.of_seconds 0.
let at s = Time.of_seconds s

(* A node with one cached fresh entry for [key 1], learned at distance
   [level] from neighbor [up]. *)
let node_with_cached ?(config = cup_config) ?(level = 3) ~up () =
  let n = Node.create ~id:(nid 0) config in
  (* A local query creates the pending state and pushes upstream... *)
  let actions =
    Node.handle_query n ~now:t0 ~next_hop:(Some up) (Node.From_local t0) (key 1)
  in
  assert (queries_sent actions = [ (up, key 1) ]);
  (* ...and the first-time update answers it. *)
  let ft =
    Update.first_time ~key:(key 1) ~entries:[ entry ~replica:0 300. ] ~level
  in
  let actions = Node.handle_update n ~now:(at 1.) ~from:up ft in
  assert (local_answers actions <> []);
  n

(* {2 handle_query} *)

let test_query_case1_fresh_cache_answers_neighbor () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  let actions =
    Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
      (Node.From_neighbor (nid 2)) (key 1)
  in
  (match updates_sent actions with
  | [ (to_, u, answering) ] ->
      Alcotest.(check int) "answer to querier" 2 (Node_id.to_int to_);
      Alcotest.(check bool) "it is an answer" true answering;
      Alcotest.(check string) "first-time" "first-time"
        (Update.kind_to_string u.Update.kind);
      Alcotest.(check int) "level is my distance + 1" 4 u.Update.level
  | _ -> Alcotest.fail "expected exactly one response");
  Alcotest.(check (list int)) "no query pushed" []
    (List.map (fun (t, _) -> Node_id.to_int t) (queries_sent actions));
  Alcotest.(check (list int)) "interest bit set" [ 2 ]
    (List.map Node_id.to_int (Node.interested_neighbors n (key 1)))

let test_query_case1_local_hit () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  let actions =
    Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
      (Node.From_local (at 2.)) (key 1)
  in
  match local_answers actions with
  | [ (posted, true, entries) ] ->
      Alcotest.(check int) "one waiter" 1 (List.length posted);
      Alcotest.(check int) "entries returned" 1 (List.length entries)
  | _ -> Alcotest.fail "expected a synchronous hit"

let test_query_case2_cold_pushes_and_sets_pending () =
  let n = Node.create ~id:(nid 0) cup_config in
  let actions =
    Node.handle_query n ~now:t0 ~next_hop:(Some (nid 7))
      (Node.From_neighbor (nid 2)) (key 1)
  in
  Alcotest.(check int) "one query up" 1 (List.length (queries_sent actions));
  Alcotest.(check bool) "pending set" true (Node.pending_first n (key 1))

let test_query_case2_coalesces () =
  let n = Node.create ~id:(nid 0) cup_config in
  ignore
    (Node.handle_query n ~now:t0 ~next_hop:(Some (nid 7))
       (Node.From_neighbor (nid 2)) (key 1));
  let again =
    Node.handle_query n ~now:(at 0.1) ~next_hop:(Some (nid 7))
      (Node.From_neighbor (nid 3)) (key 1)
  in
  Alcotest.(check int) "burst coalesced" 0 (List.length (queries_sent again));
  Alcotest.(check int) "coalesce counted" 1 (Node.stats n).queries_coalesced;
  Alcotest.(check (list int)) "both interested" [ 2; 3 ]
    (List.map Node_id.to_int (Node.interested_neighbors n (key 1)))

let test_query_standard_does_not_coalesce () =
  let n = Node.create ~id:(nid 0) std_config in
  ignore
    (Node.handle_query n ~now:t0 ~next_hop:(Some (nid 7))
       (Node.From_neighbor (nid 2)) (key 1));
  let again =
    Node.handle_query n ~now:(at 0.1) ~next_hop:(Some (nid 7))
      (Node.From_neighbor (nid 3)) (key 1)
  in
  Alcotest.(check int) "second query also pushed" 1
    (List.length (queries_sent again))

let test_query_case3_expired_repushes () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  (* entry expires at t=300 *)
  let actions =
    Node.handle_query n ~now:(at 301.) ~next_hop:(Some up)
      (Node.From_local (at 301.)) (key 1)
  in
  Alcotest.(check int) "freshness miss pushes query" 1
    (List.length (queries_sent actions));
  Alcotest.(check bool) "pending again" true (Node.pending_first n (key 1))

let test_query_authority_answers_from_directory () =
  let n = Node.create ~id:(nid 0) cup_config in
  Node.add_local_key n (key 1);
  ignore (Node.replica_birth n ~now:t0 ~key:(key 1) (entry ~replica:4 500.));
  let actions =
    Node.handle_query n ~now:(at 1.) ~next_hop:None
      (Node.From_neighbor (nid 2)) (key 1)
  in
  match updates_sent actions with
  | [ (to_, u, true) ] ->
      Alcotest.(check int) "answer to querier" 2 (Node_id.to_int to_);
      Alcotest.(check int) "level 1 from authority" 1 u.Update.level;
      Alcotest.(check int) "carries the entry" 1 (List.length u.Update.entries)
  | _ -> Alcotest.fail "expected an authoritative response"

let test_query_becomes_empty_authority () =
  (* next_hop = None but the key is unknown: the node's zone contains
     the key, so it answers as an empty authority. *)
  let n = Node.create ~id:(nid 0) cup_config in
  let actions =
    Node.handle_query n ~now:t0 ~next_hop:None (Node.From_neighbor (nid 2))
      (key 5)
  in
  Alcotest.(check bool) "now owns the key" true (Node.owns n (key 5));
  match updates_sent actions with
  | [ (_, u, true) ] ->
      Alcotest.(check int) "empty answer" 0 (List.length u.Update.entries)
  | _ -> Alcotest.fail "expected an (empty) response"

(* {2 handle_update} *)

let test_update_first_time_answers_waiters_and_forwards () =
  let n = Node.create ~id:(nid 0) cup_config in
  ignore
    (Node.handle_query n ~now:t0 ~next_hop:(Some (nid 7))
       (Node.From_local t0) (key 1));
  ignore
    (Node.handle_query n ~now:(at 0.1) ~next_hop:(Some (nid 7))
       (Node.From_neighbor (nid 2)) (key 1));
  let ft =
    Update.first_time ~key:(key 1) ~entries:[ entry 300. ] ~level:2
  in
  let actions = Node.handle_update n ~now:(at 0.5) ~from:(nid 7) ft in
  (match local_answers actions with
  | [ (posted, false, _) ] ->
      Alcotest.(check int) "local waiter answered" 1 (List.length posted)
  | _ -> Alcotest.fail "expected exactly one local answer");
  (match updates_sent actions with
  | [ (to_, u, answering) ] ->
      Alcotest.(check int) "waiting neighbor gets the response" 2
        (Node_id.to_int to_);
      Alcotest.(check bool) "classified as answer" true answering;
      Alcotest.(check int) "level incremented for the next hop" 3
        u.Update.level
  | _ -> Alcotest.fail "expected one forwarded response");
  Alcotest.(check bool) "pending cleared" false (Node.pending_first n (key 1));
  Alcotest.(check (option int)) "distance learned" (Some 2)
    (Node.distance_of n (key 1))

let test_update_refresh_extends_freshness () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  let refresh =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 600.) ~level:3
  in
  ignore (Node.handle_update n ~now:(at 299.) ~from:up refresh);
  Alcotest.(check int) "entry still fresh after old expiry" 1
    (List.length (Node.fresh_entries n ~now:(at 400.) (key 1)))

let test_update_delete_removes_entry () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  let delete =
    Update.delete ~key:(key 1) ~entry:(entry ~replica:0 300.) ~level:3
  in
  ignore (Node.handle_update n ~now:(at 10.) ~from:up delete);
  Alcotest.(check int) "entry gone" 0
    (List.length (Node.fresh_entries n ~now:(at 11.) (key 1)))

let test_update_expired_dropped () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  (* interest from a neighbor so a forward would otherwise happen *)
  ignore
    (Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
       (Node.From_neighbor (nid 2)) (key 1));
  let stale =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 5.) ~level:3
  in
  let actions = Node.handle_update n ~now:(at 10.) ~from:up stale in
  Alcotest.(check int) "nothing forwarded" 0 (List.length (updates_sent actions));
  Alcotest.(check int) "drop counted" 1
    (Node.stats n).expired_updates_dropped

let test_update_forwards_to_interested_only () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  ignore
    (Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
       (Node.From_neighbor (nid 2)) (key 1));
  let refresh =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 600.) ~level:3
  in
  let actions = Node.handle_update n ~now:(at 3.) ~from:up refresh in
  (match updates_sent actions with
  | [ (to_, u, false) ] ->
      Alcotest.(check int) "forwarded to the interested neighbor" 2
        (Node_id.to_int to_);
      Alcotest.(check int) "level incremented" 4 u.Update.level
  | _ -> Alcotest.fail "expected one forward");
  (* Clear the neighbor's bit: next refresh must not forward.  With
     recent queries the node itself stays subscribed. *)
  ignore (Node.handle_clear_bit n ~now:(at 4.) ~from:(nid 2) (key 1));
  ignore
    (Node.handle_query n ~now:(at 5.) ~next_hop:(Some up)
       (Node.From_local (at 5.)) (key 1));
  let actions = Node.handle_update n ~now:(at 6.) ~from:up refresh in
  Alcotest.(check int) "no forward after clear-bit" 0
    (List.length (updates_sent actions))

let test_update_second_chance_cuts_after_two_dry () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  let refresh l =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 l) ~level:3
  in
  (* no queries since the first-time update: first dry refresh passes *)
  let a1 = Node.handle_update n ~now:(at 10.) ~from:up (refresh 400.) in
  Alcotest.(check int) "second chance: no clear-bit yet" 0
    (List.length (clear_bits_sent a1));
  let a2 = Node.handle_update n ~now:(at 20.) ~from:up (refresh 500.) in
  (match clear_bits_sent a2 with
  | [ (to_, k) ] ->
      Alcotest.(check int) "clear-bit to the sender" 9 (Node_id.to_int to_);
      Alcotest.(check int) "for the key" 1 (Key.to_int k)
  | _ -> Alcotest.fail "expected the cut-off clear-bit");
  (* while cut, further updates do not produce duplicate clear-bits *)
  let a3 = Node.handle_update n ~now:(at 30.) ~from:up (refresh 600.) in
  Alcotest.(check int) "no duplicate clear-bit" 0
    (List.length (clear_bits_sent a3))

let test_update_query_resets_dry_streak () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  let refresh l =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 l) ~level:3
  in
  ignore (Node.handle_update n ~now:(at 10.) ~from:up (refresh 400.));
  (* a query arrives: the streak resets *)
  ignore
    (Node.handle_query n ~now:(at 15.) ~next_hop:(Some up)
       (Node.From_local (at 15.)) (key 1));
  let a = Node.handle_update n ~now:(at 20.) ~from:up (refresh 500.) in
  Alcotest.(check int) "no cut after intervening query" 0
    (List.length (clear_bits_sent a))

let test_update_push_level_limits_forwarding () =
  let config = { cup_config with Node.policy = Policy.Push_level 3 } in
  let up = nid 9 in
  (* Node at distance 3: forwarding to level 4 exceeds the bound. *)
  let n = node_with_cached ~config ~level:3 ~up () in
  ignore
    (Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
       (Node.From_neighbor (nid 2)) (key 1));
  let refresh =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 600.) ~level:3
  in
  let actions = Node.handle_update n ~now:(at 3.) ~from:up refresh in
  Alcotest.(check int) "push level bounds the forward" 0
    (List.length (updates_sent actions));
  Alcotest.(check int) "but no clear-bit either" 0
    (List.length (clear_bits_sent actions))

let test_update_push_level_boundary_allows_forward () =
  (* a node at distance 3 may forward to level 4 under Push_level 4 *)
  let config = { cup_config with Node.policy = Policy.Push_level 4 } in
  let up = nid 9 in
  let n = node_with_cached ~config ~level:3 ~up () in
  ignore
    (Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
       (Node.From_neighbor (nid 2)) (key 1));
  let refresh =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 600.) ~level:3
  in
  let actions = Node.handle_update n ~now:(at 3.) ~from:up refresh in
  Alcotest.(check int) "boundary level still forwards" 1
    (List.length (updates_sent actions))

let test_authority_local_query_is_free_hit () =
  let n = Node.create ~id:(nid 0) cup_config in
  Node.add_local_key n (key 1);
  ignore (Node.replica_birth n ~now:t0 ~key:(key 1) (entry 500.));
  let actions =
    Node.handle_query n ~now:(at 1.) ~next_hop:None (Node.From_local (at 1.))
      (key 1)
  in
  match local_answers actions with
  | [ (_, true, entries) ] ->
      Alcotest.(check int) "authority serves its directory" 1
        (List.length entries)
  | _ -> Alcotest.fail "expected a zero-cost hit at the authority"

let test_update_naive_vs_independent_cutoff () =
  (* With two replicas refreshing alternately and no queries, the
     naive node sees twice the update rate and cuts sooner. *)
  let run ~independent =
    let config =
      { Node.policy = Policy.second_chance;
        replica_independent_cutoff = independent }
    in
    let up = nid 9 in
    let n = node_with_cached ~config ~up () in
    let cuts = ref 0 and sent = ref 0 in
    (* alternate refreshes for replicas 0 and 1 *)
    for i = 1 to 4 do
      let replica = i mod 2 in
      let u =
        Update.refresh ~key:(key 1)
          ~entry:(entry ~replica (300. +. (100. *. float_of_int i)))
          ~level:3
      in
      let actions = Node.handle_update n ~now:(at (10. *. float_of_int i)) ~from:up u in
      incr sent;
      if clear_bits_sent actions <> [] then incr cuts
    done;
    !cuts
  in
  Alcotest.(check bool) "naive cuts within four mixed updates" true
    (run ~independent:false >= 1);
  (* Independent mode triggers only on replica-0 updates (i = 2, 4):
     dry streak reaches 2 only at the fourth update. *)
  Alcotest.(check int) "independent cuts exactly once, later" 1
    (run ~independent:true)

let test_update_delete_of_trigger_elects_new_trigger () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  (* The first per-replica update adopts its replica as the trigger:
     this dry append for replica 1 counts as dry update #1. *)
  let append =
    Update.append ~key:(key 1) ~entry:(entry ~replica:1 500.) ~level:3
  in
  let a0 = Node.handle_update n ~now:(at 5.) ~from:up append in
  Alcotest.(check int) "first dry update tolerated" 0
    (List.length (clear_bits_sent a0));
  (* deleting the OTHER replica must not touch the decision state *)
  let delete =
    Update.delete ~key:(key 1) ~entry:(entry ~replica:0 300.) ~level:3
  in
  let a1 = Node.handle_update n ~now:(at 6.) ~from:up delete in
  Alcotest.(check int) "non-trigger delete is silent" 0
    (List.length (clear_bits_sent a1));
  (* the next dry update for the trigger replica is dry update #2:
     second-chance cuts *)
  let refresh =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:1 600.) ~level:3
  in
  let a2 = Node.handle_update n ~now:(at 7.) ~from:up refresh in
  Alcotest.(check int) "trigger replica drives the cut-off" 1
    (List.length (clear_bits_sent a2));
  (* now delete the trigger itself: the remaining replica is adopted,
     and a fresh query re-arms the subscription machinery *)
  let delete_trigger =
    Update.delete ~key:(key 1) ~entry:(entry ~replica:1 600.) ~level:3
  in
  let a3 = Node.handle_update n ~now:(at 8.) ~from:up delete_trigger in
  Alcotest.(check int) "no duplicate clear-bit while cut" 0
    (List.length (clear_bits_sent a3))

(* {2 handle_clear_bit} *)

let test_clear_bit_cascades_up () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  ignore
    (Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
       (Node.From_neighbor (nid 2)) (key 1));
  (* exhaust the node's own popularity: the first refresh absorbs the
     neighbor's query, the next two are dry, while the downstream
     neighbor's bit holds the subscription open *)
  let refresh l =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 l) ~level:3
  in
  ignore (Node.handle_update n ~now:(at 10.) ~from:up (refresh 400.));
  ignore (Node.handle_update n ~now:(at 20.) ~from:up (refresh 500.));
  ignore (Node.handle_update n ~now:(at 25.) ~from:up (refresh 600.));
  (* the downstream neighbor loses interest -> we are dry and
     bit-less -> cascade the clear-bit upstream *)
  let actions = Node.handle_clear_bit n ~now:(at 30.) ~from:(nid 2) (key 1) in
  match clear_bits_sent actions with
  | [ (to_, _) ] ->
      Alcotest.(check int) "cascaded to upstream" 9 (Node_id.to_int to_)
  | _ -> Alcotest.fail "expected the cascade"

let test_clear_bit_stops_at_popular_node () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  ignore
    (Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
       (Node.From_neighbor (nid 2)) (key 1));
  (* the node itself is popular (fresh queries since last update) *)
  ignore
    (Node.handle_query n ~now:(at 3.) ~next_hop:(Some up)
       (Node.From_local (at 3.)) (key 1));
  let actions = Node.handle_clear_bit n ~now:(at 4.) ~from:(nid 2) (key 1) in
  Alcotest.(check int) "popularity stops the cascade" 0
    (List.length (clear_bits_sent actions))

let test_clear_bit_at_authority () =
  let n = Node.create ~id:(nid 0) cup_config in
  Node.add_local_key n (key 1);
  ignore (Node.replica_birth n ~now:t0 ~key:(key 1) (entry 500.));
  ignore
    (Node.handle_query n ~now:(at 1.) ~next_hop:None
       (Node.From_neighbor (nid 2)) (key 1));
  let actions = Node.handle_clear_bit n ~now:(at 2.) ~from:(nid 2) (key 1) in
  Alcotest.(check int) "authority absorbs the clear-bit" 0
    (List.length actions);
  (* subsequent refresh no longer goes to node 2 *)
  let a = Node.replica_refresh n ~now:(at 3.) ~key:(key 1) (entry 900.) in
  Alcotest.(check int) "unsubscribed neighbor skipped" 0
    (List.length (updates_sent a))

(* {2 Authority origination} *)

let test_authority_origination () =
  let n = Node.create ~id:(nid 0) cup_config in
  Node.add_local_key n (key 1);
  ignore
    (Node.handle_query n ~now:t0 ~next_hop:None (Node.From_neighbor (nid 2))
       (key 1));
  let birth = Node.replica_birth n ~now:(at 1.) ~key:(key 1) (entry ~replica:7 400.) in
  (match updates_sent birth with
  | [ (to_, u, false) ] ->
      Alcotest.(check int) "append to interested" 2 (Node_id.to_int to_);
      Alcotest.(check string) "kind" "append" (Update.kind_to_string u.Update.kind)
  | _ -> Alcotest.fail "expected one append");
  let refresh = Node.replica_refresh n ~now:(at 2.) ~key:(key 1) (entry ~replica:7 800.) in
  Alcotest.(check int) "refresh propagated" 1 (List.length (updates_sent refresh));
  let death = Node.replica_death n ~now:(at 3.) ~key:(key 1) (rid 7) in
  (match updates_sent death with
  | [ (_, u, false) ] ->
      Alcotest.(check string) "delete" "delete" (Update.kind_to_string u.Update.kind)
  | _ -> Alcotest.fail "expected one delete");
  Alcotest.(check int) "directory empty" 0
    (List.length (Node.local_directory n (key 1)));
  Alcotest.(check int) "death of unknown replica is a no-op" 0
    (List.length (Node.replica_death n ~now:(at 4.) ~key:(key 1) (rid 99)))

let test_authority_refresh_batch () =
  let n = Node.create ~id:(nid 0) cup_config in
  Node.add_local_key n (key 1);
  ignore
    (Node.handle_query n ~now:t0 ~next_hop:None (Node.From_neighbor (nid 2))
       (key 1));
  let entries = [ entry ~replica:1 400.; entry ~replica:2 500. ] in
  let actions = Node.replica_refresh_batch n ~now:(at 1.) ~key:(key 1) entries in
  (match updates_sent actions with
  | [ (_, u, false) ] ->
      Alcotest.(check string) "one refresh update" "refresh"
        (Update.kind_to_string u.Update.kind);
      Alcotest.(check int) "carries both entries" 2
        (List.length u.Update.entries)
  | _ -> Alcotest.fail "expected exactly one batched update");
  Alcotest.(check int) "directory holds both" 2
    (List.length (Node.local_directory n (key 1)));
  Alcotest.(check int) "empty batch is a no-op" 0
    (List.length (Node.replica_refresh_batch n ~now:(at 2.) ~key:(key 1) []));
  Alcotest.check_raises "unowned key rejected"
    (Invalid_argument "Node.replica_refresh_batch: key not owned") (fun () ->
      ignore (Node.replica_refresh_batch n ~now:(at 3.) ~key:(key 9) entries))

let test_authority_standard_caching_squelches () =
  let n = Node.create ~id:(nid 0) std_config in
  Node.add_local_key n (key 1);
  ignore
    (Node.handle_query n ~now:t0 ~next_hop:None (Node.From_neighbor (nid 2))
       (key 1));
  let refresh = Node.replica_refresh n ~now:(at 1.) ~key:(key 1) (entry 400.) in
  Alcotest.(check int) "standard caching pushes nothing" 0
    (List.length refresh)

(* {2 Churn support} *)

let test_churn_remap_and_retain () =
  let up = nid 9 in
  let n = node_with_cached ~up () in
  ignore
    (Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
       (Node.From_neighbor (nid 2)) (key 1));
  Node.remap_neighbor n ~old_id:(nid 2) ~new_id:(nid 12);
  Alcotest.(check (list int)) "bit remapped" [ 12 ]
    (List.map Node_id.to_int (Node.interested_neighbors n (key 1)));
  Node.retain_neighbors n [ nid 9 ];
  Alcotest.(check (list int)) "stale bits dropped" []
    (List.map Node_id.to_int (Node.interested_neighbors n (key 1)))

let test_churn_retain_resets_stuck_pending () =
  let n = Node.create ~id:(nid 0) cup_config in
  ignore
    (Node.handle_query n ~now:t0 ~next_hop:(Some (nid 7))
       (Node.From_local t0) (key 1));
  Alcotest.(check bool) "pending set" true (Node.pending_first n (key 1));
  (* we never hear back; the upstream neighbor disappears *)
  Node.drop_neighbor n (nid 7);
  (* the upstream was only recorded on update receipt, so dropping a
     neighbor that never answered cannot clear it; a retain without
     the neighbor can *)
  Node.retain_neighbors n [];
  Alcotest.(check bool) "a later query can re-push" true
    (queries_sent
       (Node.handle_query n ~now:(at 1.) ~next_hop:(Some (nid 8))
          (Node.From_local (at 1.)) (key 1))
    <> [])

let test_churn_handover_merges_directories () =
  let a = Node.create ~id:(nid 0) cup_config in
  Node.add_local_key a (key 1);
  ignore (Node.replica_birth a ~now:t0 ~key:(key 1) (entry ~replica:1 100.));
  ignore (Node.replica_birth a ~now:t0 ~key:(key 1) (entry ~replica:2 200.));
  let moved = Node.handover_local a (key 1) in
  Alcotest.(check int) "entries extracted" 2 (List.length moved);
  Alcotest.(check bool) "ownership dropped" false (Node.owns a (key 1));
  let b = Node.create ~id:(nid 1) cup_config in
  Node.add_local_key b (key 1);
  ignore (Node.replica_birth b ~now:t0 ~key:(key 1) (entry ~replica:2 500.));
  Node.receive_local b (key 1) moved;
  let dir = Node.local_directory b (key 1) in
  Alcotest.(check int) "merged without duplicates" 2 (List.length dir);
  let r2 =
    List.find (fun (e : Entry.t) -> Replica_id.to_int e.Entry.replica = 2) dir
  in
  Alcotest.(check (float 1e-9)) "later expiry wins" 500.
    (Time.to_seconds r2.Entry.expiry)

let test_duplicate_update_delivery_is_idempotent () =
  (* retransmission safety: delivering the same refresh twice leaves
     the same cache state, is forwarded only the first time (the
     duplicate carries no news — re-pushing it is how a rewired
     interest cycle amplifies one refresh into an update storm), and
     produces no extra clear-bits *)
  let up = nid 9 in
  let n = node_with_cached ~up () in
  ignore
    (Node.handle_query n ~now:(at 2.) ~next_hop:(Some up)
       (Node.From_neighbor (nid 2)) (key 1));
  let refresh =
    Update.refresh ~key:(key 1) ~entry:(entry ~replica:0 600.) ~level:3
  in
  let a1 = Node.handle_update n ~now:(at 3.) ~from:up refresh in
  let entries_after_first = Node.fresh_entries n ~now:(at 4.) (key 1) in
  let a2 = Node.handle_update n ~now:(at 4.) ~from:up refresh in
  Alcotest.(check bool) "first delivery forwarded" true
    (List.length (updates_sent a1) > 0);
  Alcotest.(check int) "duplicate not re-forwarded" 0
    (List.length (updates_sent a2));
  Alcotest.(check int) "no clear-bits from duplicates" 0
    (List.length (clear_bits_sent a1) + List.length (clear_bits_sent a2));
  Alcotest.(check int) "cache state unchanged"
    (List.length entries_after_first)
    (List.length (Node.fresh_entries n ~now:(at 5.) (key 1)))

(* {1 Protocol fuzzing}

   Throw random-but-well-formed event sequences at a node and check
   that no handler raises and the visible invariants hold:
   - local waiters exist only while the pending flag is set;
   - every action addresses some other node (never self);
   - fresh_entries never returns an expired entry. *)

type fuzz_op =
  | Op_local_query
  | Op_neighbor_query of int
  | Op_first_time of int * int (* neighbor, lifetime *)
  | Op_refresh of int * int * int (* neighbor, replica, lifetime *)
  | Op_append of int * int * int
  | Op_delete of int * int
  | Op_clear_bit of int
  | Op_advance of int (* seconds *)

let fuzz_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Op_local_query);
        (3, map (fun n -> Op_neighbor_query (n mod 4)) small_nat);
        ( 2,
          map2 (fun n l -> Op_first_time (n mod 4, 1 + (l mod 400))) small_nat
            small_nat );
        ( 3,
          map3
            (fun n r l -> Op_refresh (n mod 4, r mod 3, 1 + (l mod 400)))
            small_nat small_nat small_nat );
        ( 2,
          map3
            (fun n r l -> Op_append (n mod 4, r mod 3, 1 + (l mod 400)))
            small_nat small_nat small_nat );
        (1, map2 (fun n r -> Op_delete (n mod 4, r mod 3)) small_nat small_nat);
        (2, map (fun n -> Op_clear_bit (n mod 4)) small_nat);
        (3, map (fun s -> Op_advance (1 + (s mod 100))) small_nat);
      ])

let fuzz_policy_gen =
  QCheck.Gen.oneofl
    [
      Policy.Standard_caching;
      Policy.All_out;
      Policy.Push_level 2;
      Policy.Linear 0.1;
      Policy.Logarithmic 0.25;
      Policy.second_chance;
      Policy.Log_based 4;
    ]

let prop_node_fuzz =
  let gen =
    QCheck.Gen.(triple fuzz_policy_gen bool (list_size (int_range 1 60) fuzz_op_gen))
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~count:300 ~name:"random protocol traces keep invariants"
    arb
    (fun (policy, independent, ops) ->
      let config =
        { Node.policy; replica_independent_cutoff = independent }
      in
      let n = Node.create ~id:(nid 0) config in
      let k = key 1 in
      let clock = ref 0. in
      let neighbor i = nid (i + 1) in
      let check_actions actions =
        List.for_all
          (function
            | Node.Send_query { to_; _ }
            | Node.Send_update { to_; _ }
            | Node.Send_clear_bit { to_; _ } ->
                not (Node_id.equal to_ (nid 0))
            | Node.Answer_local _ -> true)
          actions
      in
      let ok = ref true in
      List.iter
        (fun op ->
          let now = at !clock in
          let actions =
            match op with
            | Op_local_query ->
                Node.handle_query n ~now ~next_hop:(Some (neighbor 0))
                  (Node.From_local now) k
            | Op_neighbor_query i ->
                Node.handle_query n ~now ~next_hop:(Some (neighbor 0))
                  (Node.From_neighbor (neighbor i))
                  k
            | Op_first_time (i, l) ->
                Node.handle_update n ~now ~from:(neighbor i)
                  (Update.first_time ~key:k
                     ~entries:[ entry ~replica:0 (!clock +. float_of_int l) ]
                     ~level:2)
            | Op_refresh (i, r, l) ->
                Node.handle_update n ~now ~from:(neighbor i)
                  (Update.refresh ~key:k
                     ~entry:(entry ~replica:r (!clock +. float_of_int l))
                     ~level:2)
            | Op_append (i, r, l) ->
                Node.handle_update n ~now ~from:(neighbor i)
                  (Update.append ~key:k
                     ~entry:(entry ~replica:r (!clock +. float_of_int l))
                     ~level:2)
            | Op_delete (i, r) ->
                Node.handle_update n ~now ~from:(neighbor i)
                  (Update.delete ~key:k ~entry:(entry ~replica:r !clock)
                     ~level:2)
            | Op_clear_bit i ->
                Node.handle_clear_bit n ~now ~from:(neighbor i) k
            | Op_advance s ->
                clock := !clock +. float_of_int s;
                []
          in
          if not (check_actions actions) then ok := false;
          (* fresh entries really are fresh *)
          if
            List.exists
              (fun (e : Entry.t) -> not (Entry.is_fresh e ~now:(at !clock)))
              (Node.fresh_entries n ~now:(at !clock) k)
          then ok := false)
        ops;
      !ok)

let () =
  Alcotest.run "cup_proto"
    [
      ( "policy",
        [
          Alcotest.test_case "all-out" `Quick test_policy_all_out_keeps;
          Alcotest.test_case "linear" `Quick test_policy_linear;
          Alcotest.test_case "logarithmic" `Quick test_policy_logarithmic;
          Alcotest.test_case "log more lenient" `Quick
            test_policy_log_more_lenient_than_linear;
          Alcotest.test_case "second chance" `Quick test_policy_second_chance;
          Alcotest.test_case "sender limit" `Quick test_policy_sender_limit;
          Alcotest.test_case "classification" `Quick
            test_policy_classification;
        ] );
      ( "update",
        [
          Alcotest.test_case "forwarded level" `Quick
            test_update_forwarded_increments_level;
          Alcotest.test_case "subject" `Quick test_update_subject;
          Alcotest.test_case "expiry" `Quick test_update_expiry;
        ] );
      ( "update_queue",
        [
          Alcotest.test_case "latency-first order" `Quick
            test_queue_latency_first_ordering;
          Alcotest.test_case "flash-crowd order" `Quick
            test_queue_flash_crowd_promotes_appends;
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "expiry urgency" `Quick test_queue_expiry_urgency;
          Alcotest.test_case "pop drops expired" `Quick
            test_queue_pop_drops_expired;
          Alcotest.test_case "drop expired" `Quick test_queue_drop_expired;
          QCheck_alcotest.to_alcotest prop_queue_pop_order_stable;
        ] );
      ( "interest",
        [
          Alcotest.test_case "ops" `Quick test_interest_ops;
          Alcotest.test_case "remap" `Quick test_interest_remap;
        ] );
      ( "node queries",
        [
          Alcotest.test_case "case 1: neighbor" `Quick
            test_query_case1_fresh_cache_answers_neighbor;
          Alcotest.test_case "case 1: local hit" `Quick
            test_query_case1_local_hit;
          Alcotest.test_case "case 2: cold" `Quick
            test_query_case2_cold_pushes_and_sets_pending;
          Alcotest.test_case "case 2: coalesce" `Quick
            test_query_case2_coalesces;
          Alcotest.test_case "standard never coalesces" `Quick
            test_query_standard_does_not_coalesce;
          Alcotest.test_case "case 3: expired" `Quick
            test_query_case3_expired_repushes;
          Alcotest.test_case "authority answers" `Quick
            test_query_authority_answers_from_directory;
          Alcotest.test_case "empty authority" `Quick
            test_query_becomes_empty_authority;
        ] );
      ( "node updates",
        [
          Alcotest.test_case "first-time answers + forwards" `Quick
            test_update_first_time_answers_waiters_and_forwards;
          Alcotest.test_case "refresh extends" `Quick
            test_update_refresh_extends_freshness;
          Alcotest.test_case "delete removes" `Quick
            test_update_delete_removes_entry;
          Alcotest.test_case "expired dropped" `Quick
            test_update_expired_dropped;
          Alcotest.test_case "forward to interested only" `Quick
            test_update_forwards_to_interested_only;
          Alcotest.test_case "second chance cut" `Quick
            test_update_second_chance_cuts_after_two_dry;
          Alcotest.test_case "query resets streak" `Quick
            test_update_query_resets_dry_streak;
          Alcotest.test_case "push level bound" `Quick
            test_update_push_level_limits_forwarding;
          Alcotest.test_case "push level boundary" `Quick
            test_update_push_level_boundary_allows_forward;
          Alcotest.test_case "naive vs independent" `Quick
            test_update_naive_vs_independent_cutoff;
          Alcotest.test_case "trigger re-election" `Quick
            test_update_delete_of_trigger_elects_new_trigger;
          Alcotest.test_case "duplicate delivery idempotent" `Quick
            test_duplicate_update_delivery_is_idempotent;
        ] );
      ( "clear bits",
        [
          Alcotest.test_case "cascades up" `Quick test_clear_bit_cascades_up;
          Alcotest.test_case "stops at popular node" `Quick
            test_clear_bit_stops_at_popular_node;
          Alcotest.test_case "authority" `Quick test_clear_bit_at_authority;
        ] );
      ( "authority",
        [
          Alcotest.test_case "origination" `Quick test_authority_origination;
          Alcotest.test_case "local query is free" `Quick
            test_authority_local_query_is_free_hit;
          Alcotest.test_case "refresh batch" `Quick
            test_authority_refresh_batch;
          Alcotest.test_case "standard squelches" `Quick
            test_authority_standard_caching_squelches;
        ] );
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_node_fuzz ]);
      ( "churn",
        [
          Alcotest.test_case "remap + retain" `Quick
            test_churn_remap_and_retain;
          Alcotest.test_case "stuck pending reset" `Quick
            test_churn_retain_resets_stuck_pending;
          Alcotest.test_case "handover merge" `Quick
            test_churn_handover_merges_directories;
        ] );
    ]
