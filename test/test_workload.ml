(* Tests for Cup_workload: query arrivals, replica lifecycles, fault
   schedules, and churn streams. *)

module Query_gen = Cup_workload.Query_gen
module Replica_gen = Cup_workload.Replica_gen
module Fault_gen = Cup_workload.Fault_gen
module Churn_gen = Cup_workload.Churn_gen
module Rng = Cup_prng.Rng
module Time = Cup_dess.Time

let rng () = Rng.create ~seed:1234

(* {1 Query generator} *)

let drain_queries g = Query_gen.fold g ~init:[] ~f:(fun acc e -> e :: acc) |> List.rev

let test_queries_within_window_and_increasing () =
  let g =
    Query_gen.create ~rng:(rng ()) ~rate:5. ~start:(Time.of_seconds 100.)
      ~stop:(Time.of_seconds 200.) ~nodes:16 ~key_dist:(Query_gen.Uniform 4)
  in
  let events = drain_queries g in
  Alcotest.(check bool) "nonempty" true (events <> []);
  let last = ref (Time.of_seconds 100.) in
  List.iter
    (fun (e : Query_gen.event) ->
      if Time.(e.at <= !last) then Alcotest.fail "times must increase";
      if Time.(e.at > Time.of_seconds 200.) then
        Alcotest.fail "event past stop";
      if e.key_index < 0 || e.key_index >= 4 then
        Alcotest.fail "key out of range";
      if e.node_index < 0 || e.node_index >= 16 then
        Alcotest.fail "node out of range";
      last := e.at)
    events

let test_queries_rate_approximates () =
  let g =
    Query_gen.create ~rng:(rng ()) ~rate:10. ~start:Time.zero
      ~stop:(Time.of_seconds 1000.) ~nodes:4 ~key_dist:(Query_gen.Uniform 2)
  in
  let n = List.length (drain_queries g) in
  (* Poisson(10 * 1000): 5 sigma corridor *)
  if abs (n - 10_000) > 500 then
    Alcotest.failf "arrival count implausible: %d" n

let test_queries_fixed_key () =
  let g =
    Query_gen.create ~rng:(rng ()) ~rate:5. ~start:Time.zero
      ~stop:(Time.of_seconds 100.) ~nodes:4 ~key_dist:(Query_gen.Fixed 3)
  in
  List.iter
    (fun (e : Query_gen.event) ->
      Alcotest.(check int) "fixed key" 3 e.key_index)
    (drain_queries g)

let test_queries_zipf_skew () =
  let g =
    Query_gen.create ~rng:(rng ()) ~rate:20. ~start:Time.zero
      ~stop:(Time.of_seconds 1000.) ~nodes:4
      ~key_dist:(Query_gen.Zipf (100, 1.2))
  in
  let counts = Array.make 100 0 in
  List.iter
    (fun (e : Query_gen.event) ->
      counts.(e.key_index) <- counts.(e.key_index) + 1)
    (drain_queries g);
  Alcotest.(check bool) "rank 0 dominates rank 50" true
    (counts.(0) > 5 * Stdlib.max 1 counts.(50))

let test_queries_validation () =
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Query_gen.create: rate must be > 0") (fun () ->
      ignore
        (Query_gen.create ~rng:(rng ()) ~rate:0. ~start:Time.zero
           ~stop:Time.zero ~nodes:1 ~key_dist:(Query_gen.Uniform 1)))

(* {1 Replica generator} *)

let drain_replicas g = Replica_gen.fold g ~init:[] ~f:(fun acc e -> e :: acc) |> List.rev

let test_replicas_births_then_refreshes () =
  let g =
    Replica_gen.create ~rng:(rng ()) ~keys:2 ~replicas_per_key:3 ~lifetime:100.
      ~stop:(Time.of_seconds 500.) ()
  in
  let events = drain_replicas g in
  let births =
    List.filter (fun (e : Replica_gen.event) -> e.kind = Replica_gen.Birth) events
  in
  Alcotest.(check int) "one birth per replica" 6 (List.length births);
  List.iter
    (fun (e : Replica_gen.event) ->
      if Time.(e.at > Time.of_seconds 100.) then
        Alcotest.fail "births staggered within the first lifetime")
    births;
  (* per-replica refresh spacing equals the lifetime *)
  let by_replica = Hashtbl.create 8 in
  List.iter
    (fun (e : Replica_gen.event) ->
      let prev = Hashtbl.find_opt by_replica e.replica in
      (match prev with
      | Some p ->
          Alcotest.(check (float 1e-6)) "refresh at expiration" 100.
            (Time.diff e.at p)
      | None -> ());
      Hashtbl.replace by_replica e.replica e.at)
    events

let test_replicas_time_ordered () =
  let g =
    Replica_gen.create ~rng:(rng ()) ~keys:5 ~replicas_per_key:4 ~lifetime:50.
      ~stop:(Time.of_seconds 300.) ()
  in
  let last = ref Time.zero in
  List.iter
    (fun (e : Replica_gen.event) ->
      if Time.(e.at < !last) then Alcotest.fail "events must be ordered";
      last := e.at)
    (drain_replicas g)

let test_replicas_death_keeps_population () =
  let g =
    Replica_gen.create ~rng:(rng ()) ~keys:1 ~replicas_per_key:5 ~lifetime:10.
      ~stop:(Time.of_seconds 500.) ~death_prob:0.5 ()
  in
  let alive = Hashtbl.create 16 in
  List.iter
    (fun (e : Replica_gen.event) ->
      match e.kind with
      | Replica_gen.Birth -> Hashtbl.replace alive e.replica ()
      | Replica_gen.Death -> Hashtbl.remove alive e.replica
      | Replica_gen.Refresh -> ())
    (drain_replicas g);
  (* deaths and replacement births are simultaneous, so the population
     never drifts *)
  Alcotest.(check int) "population constant" 5 (Hashtbl.length alive)

let test_replicas_validation () =
  Alcotest.check_raises "bad death prob"
    (Invalid_argument "Replica_gen.create: death_prob must be in [0, 1]")
    (fun () ->
      ignore
        (Replica_gen.create ~rng:(rng ()) ~keys:1 ~replicas_per_key:1
           ~lifetime:1. ~stop:Time.zero ~death_prob:1.5 ()))

(* {1 Fault generator} *)

let drain_faults g =
  let rec go acc = match Fault_gen.next g with
    | None -> List.rev acc
    | Some e -> go (e :: acc)
  in
  go []

let test_fault_up_and_down_cycles () =
  let g =
    Fault_gen.up_and_down ~rng:(rng ()) ~nodes:100 ~fraction:0.2 ~reduced:0.25
      ~warmup:300. ~down:600. ~gap:300. ~stop:(Time.of_seconds 3300.)
  in
  let events = drain_faults g in
  (* cycle = 900s; warmup 300: degrade at 300, 1200, 2100, 3000 -> 4
     degrade events, restores at 900, 1800, 2700 (3600 is past stop) *)
  Alcotest.(check int) "event count" 7 (List.length events);
  let degrades =
    List.filter
      (fun (e : Fault_gen.event) ->
        List.for_all (fun c -> c.Fault_gen.capacity < 1.) e.changes)
      events
  in
  Alcotest.(check int) "degrade batches" 4 (List.length degrades);
  List.iter
    (fun (e : Fault_gen.event) ->
      Alcotest.(check int) "20% of 100 nodes" 20 (List.length e.changes))
    events

let test_fault_once_down () =
  let g =
    Fault_gen.once_down ~rng:(rng ()) ~nodes:50 ~fraction:0.2 ~reduced:0.
      ~warmup:300.
  in
  match drain_faults g with
  | [ e ] ->
      Alcotest.(check (float 1e-9)) "at warmup" 300. (Time.to_seconds e.at);
      Alcotest.(check int) "10 nodes" 10 (List.length e.changes);
      List.iter
        (fun c -> Alcotest.(check (float 1e-9)) "reduced to zero" 0. c.Fault_gen.capacity)
        e.changes
  | l -> Alcotest.failf "expected one event, got %d" (List.length l)

let test_fault_distinct_nodes_per_batch () =
  let g =
    Fault_gen.once_down ~rng:(rng ()) ~nodes:10 ~fraction:1.0 ~reduced:0.5
      ~warmup:0.
  in
  match drain_faults g with
  | [ e ] ->
      let idx = List.map (fun c -> c.Fault_gen.node_index) e.changes in
      Alcotest.(check int) "all nodes, no duplicates" 10
        (List.length (List.sort_uniq compare idx))
  | _ -> Alcotest.fail "expected one event"

(* {1 Crash generator} *)

(* Throughput guard: draining tens of thousands of crash/recover
   events must be effectively instant.  The recovery backlog is a
   FIFO queue; an accumulation that re-walks pending recoveries per
   crash (the old list-append implementation) turns this drain
   quadratic and blows far past the generous bound. *)
let test_crash_throughput () =
  let module Crash_gen = Cup_workload.Crash_gen in
  (* recover_after longer than the mean inter-crash gap keeps a deep
     pending-recovery backlog alive for the whole drain *)
  let g =
    Crash_gen.create ~rng:(rng ()) ~crash_rate:10. ~recover_after:500.
      ~start:Time.zero
      ~stop:(Time.of_seconds 1000.)
  in
  let t0 = Unix.gettimeofday () in
  let crashes = ref 0 and recovers = ref 0 and last = ref Time.zero in
  let rec go () =
    match Crash_gen.next g with
    | None -> ()
    | Some e ->
        if Time.(e.at < !last) then Alcotest.fail "events must be ordered";
        last := e.at;
        (match e.kind with
        | Crash_gen.Crash -> incr crashes
        | Crash_gen.Recover -> incr recovers);
        go ()
  in
  go ();
  let elapsed = Unix.gettimeofday () -. t0 in
  if abs (!crashes - 10_000) > 500 then
    Alcotest.failf "crash count off: %d" !crashes;
  if !recovers > !crashes then
    Alcotest.failf "more recoveries (%d) than crashes (%d)" !recovers !crashes;
  if !recovers = 0 then Alcotest.fail "expected some recoveries";
  if elapsed > 5. then
    Alcotest.failf "draining %d events took %.1fs" (!crashes + !recovers)
      elapsed

(* {1 Churn generator} *)

let test_churn_rates () =
  let g =
    Churn_gen.create ~rng:(rng ()) ~join_rate:0.1 ~leave_rate:0.1
      ~start:Time.zero ~stop:(Time.of_seconds 10_000.)
  in
  let joins = ref 0 and leaves = ref 0 and last = ref Time.zero in
  let rec go () =
    match Churn_gen.next g with
    | None -> ()
    | Some e ->
        if Time.(e.at < !last) then Alcotest.fail "churn must be ordered";
        last := e.at;
        (match e.kind with
        | Churn_gen.Join -> incr joins
        | Churn_gen.Leave -> incr leaves);
        go ()
  in
  go ();
  (* each ~Poisson(1000) *)
  if abs (!joins - 1000) > 200 then Alcotest.failf "joins off: %d" !joins;
  if abs (!leaves - 1000) > 200 then Alcotest.failf "leaves off: %d" !leaves

let test_churn_zero_rate_disables () =
  let g =
    Churn_gen.create ~rng:(rng ()) ~join_rate:0. ~leave_rate:0.
      ~start:Time.zero ~stop:(Time.of_seconds 1000.)
  in
  Alcotest.(check bool) "no events" true (Churn_gen.next g = None)

let () =
  Alcotest.run "cup_workload"
    [
      ( "query_gen",
        [
          Alcotest.test_case "window + ordering" `Quick
            test_queries_within_window_and_increasing;
          Alcotest.test_case "rate" `Quick test_queries_rate_approximates;
          Alcotest.test_case "fixed key" `Quick test_queries_fixed_key;
          Alcotest.test_case "zipf skew" `Quick test_queries_zipf_skew;
          Alcotest.test_case "validation" `Quick test_queries_validation;
        ] );
      ( "replica_gen",
        [
          Alcotest.test_case "births then refreshes" `Quick
            test_replicas_births_then_refreshes;
          Alcotest.test_case "time ordered" `Quick test_replicas_time_ordered;
          Alcotest.test_case "death keeps population" `Quick
            test_replicas_death_keeps_population;
          Alcotest.test_case "validation" `Quick test_replicas_validation;
        ] );
      ( "fault_gen",
        [
          Alcotest.test_case "up-and-down cycles" `Quick
            test_fault_up_and_down_cycles;
          Alcotest.test_case "once-down" `Quick test_fault_once_down;
          Alcotest.test_case "distinct nodes" `Quick
            test_fault_distinct_nodes_per_batch;
        ] );
      ( "crash_gen",
        [
          Alcotest.test_case "10k-crash throughput" `Quick
            test_crash_throughput;
        ] );
      ( "churn_gen",
        [
          Alcotest.test_case "rates" `Quick test_churn_rates;
          Alcotest.test_case "zero rate" `Quick test_churn_zero_rate_disables;
        ] );
    ]
