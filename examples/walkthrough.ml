(* Protocol walkthrough: watch one query/update cycle, message by
   message.

   Attaches a ring-buffer trace sink to a tiny network, posts one
   query, and prints every protocol event it causes: the query hopping
   toward the authority, the first-time update cascading back along
   the reverse path, the refresh keeping the caches warm, and — once
   the querier loses interest — the clear-bits cutting the
   subscription.

   The sink API (Cup_obs.Sink) is pluggable: swap [Sink.ring] for
   [Sink.jsonl_file "trace.jsonl"] to stream the same events to disk,
   or [Sink.fanout] to do both at once.

   Run with:  dune exec examples/walkthrough.exe
*)

module Live = Cup_sim.Runner.Live
module Scenario = Cup_sim.Scenario
module Trace = Cup_sim.Trace
module Sink = Cup_obs.Sink
module Net = Cup_overlay.Net

let () =
  Printf.printf "== One CUP query/update cycle, message by message ==\n\n";
  let cfg =
    {
      Scenario.default with
      nodes = 16;
      total_keys_override = Some 1;
      query_rate = 0.001;
      (* effectively silent background *)
      query_duration = 2400.;
      drain = 0.;
      seed = 99;
    }
  in
  let live = Live.create cfg in
  let trace = Trace.create ~capacity:256 () in
  let sink = Sink.ring trace in
  Sink.attach live sink;
  let key = Live.key_of_index live 0 in
  let net = Live.network live in
  let authority = Live.authority_of live key in
  let querier =
    (* the node whose route to the authority is longest *)
    let hops id = List.length (Cup_overlay.Route.hops_exn (Net.route net ~from:id key)) in
    List.fold_left
      (fun best id -> if hops id > hops best then id else best)
      authority (Net.node_ids net)
  in
  Printf.printf "16-node CAN; %s owns %s; %s will query (%d hops away)\n\n"
    (Format.asprintf "%a" Cup_overlay.Node_id.pp authority)
    (Format.asprintf "%a" Cup_overlay.Key.pp key)
    (Format.asprintf "%a" Cup_overlay.Node_id.pp querier)
    (List.length (Cup_overlay.Route.hops_exn (Net.route net ~from:querier key)));

  (* let the replica announce itself, then trace the cycle *)
  Live.run_until live 350.;
  Trace.clear trace;
  Printf.printf "--- the query and its answer ---\n";
  Live.post_query live ~node:querier ~key;
  Live.run_until live 352.;
  List.iter
    (fun e -> Format.printf "  %a@." Trace.pp_event e)
    (Trace.events trace);

  Trace.clear trace;
  Printf.printf "\n--- the next replica refresh propagates down ---\n";
  Live.run_until live 700.;
  List.iter
    (fun e -> Format.printf "  %a@." Trace.pp_event e)
    (Trace.filter_key trace key);

  Trace.clear trace;
  Printf.printf
    "\n--- no more queries: second-chance cuts the subscription ---\n";
  Live.run_until live 1400.;
  List.iter
    (fun e -> Format.printf "  %a@." Trace.pp_event e)
    (Trace.filter_key trace key);
  ignore (Live.finish live);
  Sink.close sink;
  Printf.printf "\n(the clear-bit above is the node telling its upstream to\n\
                 \ stop sending updates - Section 2.7 of the paper)\n";
  Printf.printf "(%d protocol events flowed through the sink in total)\n"
    (Sink.events_seen sink)
