(* Quickstart: a small CUP network, step by step.

   Builds a 64-node CAN, registers one key at its authority, posts a
   few queries by hand through the [Runner.Live] interface, and shows
   the protocol machinery working: the first query misses and travels
   to the authority, caches fill along the reverse path, a refresh
   keeps them fresh, and a later query hits locally.

   Run with:  dune exec examples/quickstart.exe
*)

module Live = Cup_sim.Runner.Live
module Scenario = Cup_sim.Scenario
module Counters = Cup_metrics.Counters

let () =
  Printf.printf "== CUP quickstart ==\n\n";
  (* A scenario with a tame background workload; we drive extra
     queries manually. *)
  let cfg =
    {
      Scenario.default with
      nodes = 64;
      total_keys_override = Some 1;
      query_rate = 0.5;
      query_duration = 1200.;
      drain = 300.;
      seed = 2024;
    }
  in
  let live = Live.create cfg in
  let topo = Live.network live in
  let key = Live.key_of_index live 0 in
  let authority = Live.authority_of live key in
  Printf.printf "network: %d nodes; key %s is owned by node %s\n"
    (Cup_overlay.Net.size topo)
    (Format.asprintf "%a" Cup_overlay.Key.pp key)
    (Format.asprintf "%a" Cup_overlay.Node_id.pp authority);

  (* Pick a querier far from the authority. *)
  let querier =
    let ids = Cup_overlay.Net.node_ids topo in
    let dist id =
      List.length (Cup_overlay.Route.hops_exn (Cup_overlay.Net.route topo ~from:id key))
    in
    List.fold_left
      (fun best id -> if dist id > dist best then id else best)
      (List.hd ids) ids
  in
  Printf.printf "querier: node %s, %d hops from the authority\n\n"
    (Format.asprintf "%a" Cup_overlay.Node_id.pp querier)
    (List.length
       (Cup_overlay.Route.hops_exn (Cup_overlay.Net.route topo ~from:querier key)));

  (* Let the replica system come up, then post the first query. *)
  Live.run_until live 310.;
  Live.post_query live ~node:querier ~key;
  Live.run_until live 320.;
  let node = Live.node live querier in
  Printf.printf "after first query at t=310s:\n";
  Printf.printf "  cached entries at querier: %d\n"
    (List.length
       (Cup_proto.Node.fresh_entries node
          ~now:(Cup_dess.Time.of_seconds 320.)
          key));
  Printf.printf
    "  misses so far: %d (ours plus the background workload's cold starts)\n\n"
    (Counters.misses (Live.counters live));

  (* Query again shortly after: the cache is fresh, zero-cost hit. *)
  Live.post_query live ~node:querier ~key;
  Live.run_until live 330.;
  Printf.printf "second query at t=320s: hits=%d misses=%d\n"
    (Counters.hits (Live.counters live))
    (Counters.misses (Live.counters live));

  (* Jump past several refresh cycles: the background queries keep the
     subscription alive and refreshes keep extending the entry, so a
     query long after the original lifetime still hits. *)
  Live.run_until live 1000.;
  Live.post_query live ~node:querier ~key;
  Live.run_until live 1010.;
  Printf.printf
    "query at t=1000s (after %d refresh cycles): hits=%d misses=%d\n\n"
    2
    (Counters.hits (Live.counters live))
    (Counters.misses (Live.counters live));

  let result = Live.finish live in
  Printf.printf "final cost summary:\n%s\n"
    (Format.asprintf "%a" Counters.pp result.counters)
